"""Standalone schedule analysis and utilization reporting.

Beyond the pass/fail checking the engines do, these helpers quantify
*how well* a schedule uses the machine — the quantities the paper's
arguments turn on: per-port traffic at the source (the scatter
bottleneck story of §4), per-round link utilization (the MSBT's
all-edges-busy property), and idle fractions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.sim.ports import PortModel
from repro.sim.schedule import Schedule
from repro.sim.synchronous import check_round_constraints
from repro.topology.base import Topology

__all__ = [
    "ScheduleProfile",
    "profile_schedule",
    "assert_schedule_valid",
    "buffer_occupancy",
    "peak_buffer_elems",
]


@dataclass
class ScheduleProfile:
    """Aggregate utilization metrics of one schedule.

    Attributes:
        rounds: number of non-empty rounds.
        transfers: total packets.
        max_concurrency: most transfers in any round.
        mean_concurrency: average transfers per non-empty round.
        edge_utilization: fraction of directed cube edges carrying at
            least one packet over the whole run.
        peak_round_edge_fraction: largest fraction of directed edges
            busy in a single round (1.0 means some round used every
            edge — the MSBT's signature).
        source_port_elems: outbound elements per source port, when a
            ``source`` is known from the schedule metadata.
    """

    rounds: int
    transfers: int
    max_concurrency: int
    mean_concurrency: float
    edge_utilization: float
    peak_round_edge_fraction: float
    source_port_elems: dict[int, int]

    def balance_ratio(self) -> float:
        """Max-over-min outbound elements across the source's ports.

        1.0 is perfectly balanced (the BST/MSBT goal); the SBT scatter
        shows ``~2**(n-1)`` here.
        """
        if not self.source_port_elems:
            return 1.0
        values = list(self.source_port_elems.values())
        return max(values) / max(min(values), 1)


def profile_schedule(
    cube: Topology,
    schedule: Schedule,
    source: int | None = None,
) -> ScheduleProfile:
    """Compute a :class:`ScheduleProfile` for ``schedule``."""
    non_empty = [r for r in schedule.rounds if r]
    edges_seen: set[tuple[int, int]] = set()
    peak_fraction = 0.0
    port_elems: Counter[int] = Counter()
    src = source if source is not None else schedule.meta.get("source")

    for r in non_empty:
        round_edges = {(t.src, t.dst) for t in r}
        edges_seen |= round_edges
        peak_fraction = max(
            peak_fraction, len(round_edges) / cube.num_directed_edges
        )
        if src is not None:
            for t in r:
                if t.src == src:
                    port_elems[cube.port_towards(t.src, t.dst)] += (
                        schedule.transfer_elems(t)
                    )

    transfers = sum(len(r) for r in non_empty)
    return ScheduleProfile(
        rounds=len(non_empty),
        transfers=transfers,
        max_concurrency=max((len(r) for r in non_empty), default=0),
        mean_concurrency=transfers / len(non_empty) if non_empty else 0.0,
        edge_utilization=len(edges_seen) / cube.num_directed_edges,
        peak_round_edge_fraction=peak_fraction,
        source_port_elems=dict(port_elems),
    )


def buffer_occupancy(
    schedule: Schedule,
    node: int,
    keep_own: bool = True,
) -> list[int]:
    """Transit-buffer occupancy of ``node`` per round, in elements.

    A chunk occupies the node's buffer from the round after it arrives
    until the round its *last* outgoing copy leaves (store-and-forward
    semantics: forwarded data can be dropped once sent).  With
    ``keep_own`` (default) chunks whose final consumer is this node
    (scatter chunks ``("m", node, p)``) never leave the buffer, since
    the application owns them.

    Returns occupancy sampled *after* each round of the schedule.
    """
    arrive: dict = {}
    last_send: dict = {}
    for ri, r in enumerate(schedule.rounds):
        for t in r:
            if t.dst == node:
                for c in t.chunks:
                    if c not in arrive:
                        arrive[c] = ri
            if t.src == node:
                for c in t.chunks:
                    last_send[c] = max(last_send.get(c, -1), ri)

    occupancy = []
    held = 0
    events_in: dict[int, list] = {}
    events_out: dict[int, list] = {}
    for c, ri in arrive.items():
        events_in.setdefault(ri, []).append(c)
    for c, ri in last_send.items():
        if c in arrive:  # only transit data frees buffer space
            is_own = isinstance(c, tuple) and len(c) >= 2 and c[1] == node
            if not (keep_own and is_own):
                events_out.setdefault(ri, []).append(c)
    for ri in range(len(schedule.rounds)):
        for c in events_in.get(ri, []):
            held += schedule.chunk_sizes[c]
        for c in events_out.get(ri, []):
            held -= schedule.chunk_sizes[c]
        occupancy.append(held)
    return occupancy


def peak_buffer_elems(schedule: Schedule, node: int) -> int:
    """Worst-case transit-buffer need of ``node`` over the run."""
    occ = buffer_occupancy(schedule, node)
    return max(occ, default=0)


def assert_schedule_valid(
    cube: Topology,
    schedule: Schedule,
    port_model: PortModel,
) -> None:
    """Check every round against the port model (no execution).

    Unlike :func:`repro.sim.synchronous.run_synchronous` this does not
    need initial holdings and does not check causality — useful for
    validating schedule *structure* in isolation.
    """
    for idx, r in enumerate(schedule.rounds):
        if r:
            check_round_constraints(cube, r, port_model, idx)
