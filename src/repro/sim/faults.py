"""Fault injection: dead links, dead nodes, and degraded-mode results.

§1 of the paper recalls that a Boolean cube has ``n = log N``
edge-disjoint paths between any node pair — exactly a fault-tolerance
guarantee: any ``n - 1`` link (or bypassed-node) failures leave every
pair connected, and the MSBT's ``n`` edge-disjoint spanning trees are
the collective-communication face of the same fact.  This module makes
failures a first-class simulation input so that guarantee can actually
be exercised:

* :class:`FaultPlan` — a declarative set of failed links and nodes,
  each optionally *time-activated* (healthy until ``at_time``, dead
  from then on);
* :class:`FaultError` — the structured exception both engines raise
  when a scheduled transfer would cross a dead channel, naming the
  edge, the time, and the pending chunks;
* :class:`DegradedResult` — the alternative outcome under
  ``on_fault="report"``: the run continues past failures, cancelled
  and starved transfers are recorded, and every undelivered
  ``(node, chunk)`` pair is named.  No scenario completes *silently*
  incomplete.

Timing semantics
----------------
A fault blocks a transfer when it is active at the instant the
transfer would *start*.  Transfers already in flight when a
time-activated fault triggers run to completion (store-and-forward
hardware does not lose a packet mid-wire in this model).  The
event-driven engines evaluate the activation against the transfer's
computed start time; the lock-step engine evaluates it against the
accumulated cost of the preceding rounds.  Immediate faults
(``at_time == 0.0``, the default) behave identically everywhere.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from dataclasses import dataclass, field

from repro.sim.schedule import Chunk, Schedule, Transfer
from repro.sim.trace import LinkStats

__all__ = [
    "FaultPlan",
    "FaultError",
    "FaultEvent",
    "DegradedResult",
    "TransferLog",
    "undelivered_map",
]


@dataclass(frozen=True)
class TransferLog:
    """Opt-in per-transfer execution provenance (event engines).

    Attributes:
        ids: executed transfer indices into the schedule's
            ``all_transfers()`` program order, in execution order.
        starts: matching start times, same execution order — unlike the
            results' ``start_times``, which are sorted ascending.

    The service layer (:mod:`repro.service`) uses this to split one
    merged multi-job run back into per-job completion times and link
    traffic; pair each id with its owning job via
    :attr:`repro.sim.multi.MergedProgram.owners`.
    """

    ids: list[int]
    starts: list[float]

#: ``on_fault`` modes accepted by the engines.
ON_FAULT_MODES = ("raise", "report")


def _check_mode(on_fault: str) -> str:
    if on_fault not in ON_FAULT_MODES:
        raise ValueError(
            f"on_fault must be one of {ON_FAULT_MODES}, got {on_fault!r}"
        )
    return on_fault


class FaultError(RuntimeError):
    """A transfer was scheduled over a failed link or node.

    Attributes:
        edge: the directed ``(src, dst)`` edge of the blocked transfer,
            when a transfer triggered the error.
        node: the dead endpoint responsible, for node faults.
        time: simulated time at which the transfer would have started.
        chunks: the chunk ids the blocked transfer was carrying.
        undelivered: nodes known to be unreachable/undelivered, when the
            error is raised by the routing layer for a disconnected
            surviving cube.
    """

    def __init__(
        self,
        message: str,
        *,
        edge: tuple[int, int] | None = None,
        node: int | None = None,
        time: float | None = None,
        chunks: frozenset[Chunk] = frozenset(),
        undelivered: tuple[int, ...] = (),
    ):
        super().__init__(message)
        self.edge = edge
        self.node = node
        self.time = time
        self.chunks = frozenset(chunks)
        self.undelivered = tuple(undelivered)


class FaultPlan:
    """A declarative set of link and node failures.

    Args:
        dead_links: failed links, each ``(a, b)`` (dead from time 0,
            direction-agnostic) or ``(a, b, at_time)`` (dead from
            ``at_time`` on).
        dead_nodes: failed nodes, each ``v`` (dead from time 0) or
            ``(v, at_time)``.

    A dead link blocks transfers in both directions; a dead node blocks
    every transfer it would send *or* receive.  The plan is immutable
    and hashable (via :meth:`cache_token`), so it can key caches.

    ``topology`` optionally pins the plan to a host graph; the topology
    identity becomes part of :meth:`cache_token`, so the same node/link
    addresses on a hypercube and on a torus of equal ``n`` can never
    share a cache entry (the addresses name different physical links).

    >>> plan = FaultPlan(dead_links=[(0, 1), (2, 6, 5.0)], dead_nodes=[3])
    >>> plan.blocks(1, 0, 0.0)
    ('link', (0, 1))
    >>> plan.blocks(2, 6, 1.0) is None   # not yet activated
    True
    """

    __slots__ = ("_links", "_nodes", "_topology")

    def __init__(
        self,
        dead_links: Iterable[tuple] = (),
        dead_nodes: Iterable[int | tuple] = (),
        topology: object | None = None,
    ):
        links: dict[tuple[int, int], float] = {}
        for item in dead_links:
            if len(item) == 2:
                a, b = item
                at = 0.0
            elif len(item) == 3:
                a, b, at = item
            else:
                raise ValueError(f"dead link must be (a, b) or (a, b, at_time), got {item!r}")
            if a == b:
                raise ValueError(f"a link needs two distinct endpoints, got {item!r}")
            if at < 0:
                raise ValueError(f"activation time must be >= 0, got {item!r}")
            key = (min(a, b), max(a, b))
            prev = links.get(key)
            links[key] = float(at) if prev is None else min(prev, float(at))
        nodes: dict[int, float] = {}
        for item in dead_nodes:
            if isinstance(item, tuple):
                v, at = item
            else:
                v, at = item, 0.0
            if at < 0:
                raise ValueError(f"activation time must be >= 0, got {item!r}")
            prev = nodes.get(v)
            nodes[v] = float(at) if prev is None else min(prev, float(at))
        self._links = links
        self._nodes = nodes
        if topology is None:
            self._topology: tuple | None = None
        else:
            from repro.topology.base import topology_token

            self._topology = topology_token(topology)

    # -- structure ----------------------------------------------------------

    @property
    def dead_links(self) -> frozenset[tuple[int, int]]:
        """All failed links ``(min, max)``, regardless of activation time."""
        return frozenset(self._links)

    @property
    def dead_nodes(self) -> frozenset[int]:
        """All failed nodes, regardless of activation time."""
        return frozenset(self._nodes)

    @property
    def num_faults(self) -> int:
        """Total failure count (links + nodes)."""
        return len(self._links) + len(self._nodes)

    @property
    def is_immediate(self) -> bool:
        """True when every fault is active from time 0."""
        return all(t == 0.0 for t in self._links.values()) and all(
            t == 0.0 for t in self._nodes.values()
        )

    def link_activation(self, a: int, b: int) -> float | None:
        """Activation time of link ``(a, b)``, or ``None`` if healthy."""
        return self._links.get((min(a, b), max(a, b)))

    def node_activation(self, v: int) -> float | None:
        """Activation time of node ``v``, or ``None`` if healthy."""
        return self._nodes.get(v)

    # -- queries the engines use -------------------------------------------

    def blocks(
        self, src: int, dst: int, time: float = 0.0
    ) -> tuple[str, tuple[int, int] | int] | None:
        """Why a ``src -> dst`` transfer starting at ``time`` is blocked.

        Returns ``("node", v)`` or ``("link", (a, b))`` for the first
        active fault touching the transfer, or ``None`` when the
        transfer may proceed.
        """
        at = self._nodes.get(src)
        if at is not None and time >= at:
            return ("node", src)
        at = self._nodes.get(dst)
        if at is not None and time >= at:
            return ("node", dst)
        key = (min(src, dst), max(src, dst))
        at = self._links.get(key)
        if at is not None and time >= at:
            return ("link", key)
        return None

    def schedule_is_clean(self, schedule: Schedule) -> bool:
        """True when no transfer of ``schedule`` touches any fault,
        regardless of timing (a conservative static check)."""
        for t in schedule.all_transfers():
            if (
                t.src in self._nodes
                or t.dst in self._nodes
                or (min(t.src, t.dst), max(t.src, t.dst)) in self._links
            ):
                return False
        return True

    # -- identity -----------------------------------------------------------

    @property
    def topology_token(self) -> tuple | None:
        """Identity of the pinned host topology, or ``None`` if unpinned."""
        return self._topology

    def cache_token(self) -> tuple:
        """Hashable canonical identity, suitable as a cache-key component."""
        return (
            "faultplan",
            self._topology,
            tuple(sorted(self._links.items())),
            tuple(sorted(self._nodes.items())),
        )

    def __bool__(self) -> bool:
        return bool(self._links or self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.cache_token() == other.cache_token()

    def __hash__(self) -> int:
        return hash(self.cache_token())

    def __repr__(self) -> str:
        return (
            f"FaultPlan(links={sorted(self._links)}, "
            f"nodes={sorted(self._nodes)})"
        )


@dataclass(frozen=True)
class FaultEvent:
    """One transfer cancelled by an active fault (``on_fault="report"``).

    Attributes:
        transfer: the blocked transfer.
        time: simulated time at which it would have started.
        kind: ``"link"`` or ``"node"``.
        subject: the failed link ``(a, b)`` or the failed node.
    """

    __slots__ = ("transfer", "time", "kind", "subject")

    transfer: Transfer
    time: float
    kind: str
    subject: tuple[int, int] | int

    # frozen + manual __slots__ needs explicit pickle support (the
    # default slot-state restore goes through the frozen __setattr__)
    def __getstate__(self):
        return (self.transfer, self.time, self.kind, self.subject)

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state):
            object.__setattr__(self, name, value)


@dataclass
class DegradedResult:
    """Outcome of a run that survived faults in ``report`` mode.

    Mirrors the shape of :class:`~repro.sim.engine.AsyncResult` /
    :class:`~repro.sim.synchronous.SyncResult` (``time``, ``holdings``,
    ``link_stats``) and adds the damage report.

    Attributes:
        time: completion time of the transfers that did run.
        holdings: chunk ids held by every node at the end.
        link_stats: per-edge traffic of the executed transfers.
        fault_events: transfers cancelled directly by an active fault.
        undelivered: node -> chunks that were scheduled to reach it but
            never did (both direct cancellations and starvation
            cascades).  Empty when the degraded run still delivered
            everything.
        transfers_executed: transfers that ran.
        transfers_lost: transfers cancelled or starved.
        start_times: start times of executed transfers (event engines).
        cycles: non-empty rounds executed (lock-step engine).
        step_costs: per-round costs (lock-step engine).
        transfer_log: execution provenance when requested
            (``transfer_log=True`` on the vectorized engine).
    """

    time: float
    holdings: dict[int, set[Chunk]]
    link_stats: LinkStats
    fault_events: list[FaultEvent] = field(default_factory=list)
    undelivered: dict[int, frozenset[Chunk]] = field(default_factory=dict)
    transfers_executed: int = 0
    transfers_lost: int = 0
    start_times: list[float] | None = None
    cycles: int | None = None
    step_costs: list[float] | None = None
    transfer_log: TransferLog | None = None

    @property
    def complete(self) -> bool:
        """True when every scheduled delivery still happened."""
        return not self.undelivered

    @property
    def undelivered_nodes(self) -> tuple[int, ...]:
        """Nodes that missed at least one scheduled chunk, ascending."""
        return tuple(sorted(self.undelivered))

    def holds(self, node: int, chunk: Chunk) -> bool:
        """True when ``node`` ended the run holding ``chunk``."""
        return chunk in self.holdings.get(node, set())

    def __repr__(self) -> str:
        return (
            f"DegradedResult(time={self.time:.6g}, "
            f"lost={self.transfers_lost}, "
            f"undelivered_nodes={list(self.undelivered_nodes)})"
        )


def undelivered_map(
    lost_transfers: Collection[Transfer],
    holdings: dict[int, set[Chunk]],
) -> dict[int, frozenset[Chunk]]:
    """Deliveries the lost transfers owed that never happened anyway.

    A chunk a cancelled transfer was carrying may still reach its
    destination over another surviving path (merged schedules route
    redundantly), so only ``(dst, chunk)`` pairs absent from the final
    holdings count as undelivered.
    """
    missing: dict[int, set[Chunk]] = {}
    for t in lost_transfers:
        have = holdings.get(t.dst, set())
        gone = {c for c in t.chunks if c not in have}
        if gone:
            missing.setdefault(t.dst, set()).update(gone)
    return {v: frozenset(cs) for v, cs in sorted(missing.items())}
