"""Per-link traffic statistics collected by both engines.

Broadcasting loads links evenly only under the MSBT; the SBT pushes
half of all scatter traffic over one root port.  These counters make
that bandwidth story (the core of §4) measurable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.topology.hypercube import DirectedEdge

__all__ = ["LinkStats"]


@dataclass
class LinkStats:
    """Traffic accounting per directed edge.

    Attributes:
        elems: elements moved per directed edge.
        packets: packets moved per directed edge.
    """

    elems: Counter = field(default_factory=Counter)
    packets: Counter = field(default_factory=Counter)

    def record(self, src: int, dst: int, n_elems: int) -> None:
        """Account one packet of ``n_elems`` elements on edge ``src -> dst``."""
        edge = DirectedEdge(src, dst)
        self.elems[edge] += n_elems
        self.packets[edge] += 1

    def max_edge_elems(self) -> int:
        """Heaviest directed-edge traffic, in elements (bandwidth bottleneck)."""
        return max(self.elems.values(), default=0)

    def max_edge_packets(self) -> int:
        """Heaviest directed-edge traffic, in packets (start-up bottleneck)."""
        return max(self.packets.values(), default=0)

    def total_elems(self) -> int:
        """Total element-hops moved."""
        return sum(self.elems.values())

    def port_elems(self, node: int) -> dict[int, int]:
        """Outbound traffic of ``node`` per port (elements)."""
        out: dict[int, int] = {}
        for edge, n in self.elems.items():
            if edge.src == node:
                out[edge.dimension] = out.get(edge.dimension, 0) + n
        return out

    def busiest_edges(self, k: int = 5) -> list[tuple[DirectedEdge, int]]:
        """The ``k`` most loaded directed edges by elements."""
        return self.elems.most_common(k)

    def merge(self, *others: "LinkStats") -> "LinkStats":
        """Fold other stats into this one (in place); returns ``self``.

        Counters add edge-wise, so merging per-worker (or per-actor)
        stats yields exactly the counters a single global observer
        would have recorded.  Used by the runtime cluster (one
        :class:`LinkStats` per actor) and by sweep telemetry.
        """
        for other in others:
            self.elems.update(other.elems)
            self.packets.update(other.packets)
        return self

    @classmethod
    def merged(cls, stats: "list[LinkStats] | tuple[LinkStats, ...]") -> "LinkStats":
        """A fresh :class:`LinkStats` combining ``stats`` (inputs untouched)."""
        return cls().merge(*stats)
