"""Packet-switched hypercube machine simulation.

Two engines over one schedule representation:

* :func:`repro.sim.run_synchronous` — lock-step cycles with port-model
  validation (the paper's analytical step counts);
* :func:`repro.sim.run_async` — event-driven timing with start-ups,
  hardware packet splitting and cross-port overlap (the paper's iPSC
  measurements).

The event engine has interchangeable implementations (see
:mod:`repro.sim.dispatch`): the default ``"indexed"`` object path and
the ``"vectorized"`` array core (:func:`repro.sim.run_async_vectorized`),
which compiles the schedule to flat NumPy tables via
:func:`repro.sim.lower_schedule` and produces bit-identical results.
"""

from repro.sim.dispatch import ENGINES, get_engine, resolve_engine
from repro.sim.engine import AsyncResult, run_async
from repro.sim.faults import (
    DegradedResult,
    FaultError,
    FaultEvent,
    FaultPlan,
    TransferLog,
)
from repro.sim.lowering import LoweredSchedule, lower_schedule
from repro.sim.machine import IPSC_D7, UNIT_COST, ZERO_STARTUP, MachineParams
from repro.sim.multi import JobEntry, MergedProgram, merge_programs, untag_holdings
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule, Transfer, merge_schedules
from repro.sim.synchronous import SyncResult, check_round_constraints, run_synchronous
from repro.sim.trace import LinkStats
from repro.sim.vectorized import run_async_vectorized

__all__ = [
    "AsyncResult",
    "run_async",
    "run_async_vectorized",
    "ENGINES",
    "get_engine",
    "resolve_engine",
    "LoweredSchedule",
    "lower_schedule",
    "DegradedResult",
    "FaultError",
    "FaultEvent",
    "FaultPlan",
    "TransferLog",
    "JobEntry",
    "MergedProgram",
    "merge_programs",
    "untag_holdings",
    "IPSC_D7",
    "UNIT_COST",
    "ZERO_STARTUP",
    "MachineParams",
    "PortModel",
    "Chunk",
    "Schedule",
    "Transfer",
    "merge_schedules",
    "SyncResult",
    "check_round_constraints",
    "run_synchronous",
    "LinkStats",
]
