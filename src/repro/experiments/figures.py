"""Reproduction experiments for Figures 5-8 (the iPSC/d7 measurements).

These run the event-driven engine under the iPSC machine model
(1 KB internal packets, millisecond start-ups, 20 % cross-port
overlap) to regenerate the *measured* curves of §5.  Absolute times
are simulator times under the calibrated parameters; the claims being
reproduced are the shapes: linear growth in message size, the 1 KB
packet-size knee, the ~log N MSBT speed-up, and the BST-vs-SBT
personalized-communication gap.

Every figure is a sweep over independent simulation points, so each
``run_figN`` fans its grid out through
:func:`repro.experiments.parallel.run_sweep` — ``jobs=4`` runs four
worker processes, ``jobs=None`` (the default) honours ``REPRO_JOBS``
and otherwise stays serial.  Results are reassembled in grid order, so
the report is identical whatever the worker count.
"""

from __future__ import annotations

import os

from repro.collectives.api import broadcast, scatter
from repro.experiments.harness import TableReport
from repro.experiments.parallel import run_sweep, sweep_grid
from repro.sim.machine import IPSC_D7, MachineParams
from repro.sim.ports import PortModel
from repro.topology.hypercube import Hypercube

__all__ = ["run_fig5", "run_fig6", "run_fig7", "run_fig8"]


def _fig5_point(n: int, B: int, M: int, machine: MachineParams) -> list[list[object]]:
    """One Figure 5 grid point: SBT broadcast time at ``(n, B, M)``."""
    cube = Hypercube(n)
    res = broadcast(
        cube,
        0,
        "sbt",
        message_elems=M,
        packet_elems=B,
        port_model=PortModel.ONE_PORT_FULL,
        machine=machine,
        run_event_sim=True,
    )
    return [[n, B, M, round(res.time, 4)]]


def run_fig5(
    dims: tuple[int, ...] = (2, 4, 6),
    packet_sizes: tuple[int, ...] = (256, 1024, 4096),
    message_bytes: tuple[int, ...] = (4096, 16384, 61440),
    machine: MachineParams = IPSC_D7,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Figure 5: SBT broadcast time on the iPSC vs message/packet size.

    One element = one byte.  Time should grow almost linearly with the
    message size, with external packets below the 1 KB internal size
    paying proportionally more start-ups.
    """
    report = TableReport(
        "Figure 5 — SBT broadcasting on the iPSC model",
        ["dim", "B (bytes)", "M (bytes)", "time (s)"],
    )
    grid = sweep_grid(n=dims, B=packet_sizes, M=message_bytes)
    for point in grid:
        point["machine"] = machine
    result = run_sweep(_fig5_point, grid, jobs=jobs, cache_dir=cache_dir)
    for rows in result.values:
        for row in rows:
            report.add(*row)
    report.sweep = result.stats
    return report


def _fig6_point(n: int, M: int, B: int, machine: MachineParams) -> list[list[object]]:
    """One Figure 6 grid point: SBT and MSBT broadcast times at ``n``."""
    cube = Hypercube(n)
    t_sbt = broadcast(
        cube, 0, "sbt", M, B,
        PortModel.ONE_PORT_FULL, machine, run_event_sim=True,
    ).time
    t_msbt = broadcast(
        cube, 0, "msbt", M, B,
        PortModel.ONE_PORT_FULL, machine, run_event_sim=True,
    ).time
    return [[n, round(t_sbt, 4), round(t_msbt, 4)]]


def run_fig6(
    dims: tuple[int, ...] = (2, 3, 4, 5, 6),
    message_bytes: int = 61440,
    packet_bytes: int = 1024,
    machine: MachineParams = IPSC_D7,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Figure 6: SBT vs MSBT broadcast of 60 KB in 1 KB packets.

    The MSBT keeps its time nearly flat across cube dimensions while
    the SBT's grows linearly in ``log N``.
    """
    report = TableReport(
        f"Figure 6 — broadcasting {message_bytes} bytes, B={packet_bytes}",
        ["dim", "SBT time (s)", "MSBT time (s)"],
    )
    grid = [
        dict(n=n, M=message_bytes, B=packet_bytes, machine=machine)
        for n in dims
    ]
    result = run_sweep(_fig6_point, grid, jobs=jobs, cache_dir=cache_dir)
    for rows in result.values:
        for row in rows:
            report.add(*row)
    report.sweep = result.stats
    return report


def run_fig7(
    dims: tuple[int, ...] = (2, 3, 4, 5, 6),
    message_bytes: int = 61440,
    packet_bytes: int = 1024,
    machine: MachineParams = IPSC_D7,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Figure 7: MSBT speed-up over SBT — approximately ``log N``."""
    fig6 = run_fig6(
        dims, message_bytes, packet_bytes, machine,
        jobs=jobs, cache_dir=cache_dir,
    )
    report = TableReport(
        "Figure 7 — MSBT vs SBT broadcast speed-up",
        ["dim", "speedup", "log N"],
    )
    for (n, t_sbt, t_msbt) in fig6.rows:
        report.add(n, round(float(t_sbt) / float(t_msbt), 3), n)
    report.sweep = fig6.sweep
    return report


def _fig8_point(n: int, M: int, machine: MachineParams) -> list[list[object]]:
    """One Figure 8 grid point: SBT vs BST personalized times at ``n``."""
    cube = Hypercube(n)
    t_sbt = scatter(
        cube, 0, "sbt", M, M,
        PortModel.ONE_PORT_HALF, machine, run_event_sim=True,
    ).time
    t_bst = scatter(
        cube, 0, "bst", M, M,
        PortModel.ONE_PORT_HALF, machine, run_event_sim=True,
    ).time
    return [[n, round(t_sbt, 4), round(t_bst, 4), round(t_bst / t_sbt, 3)]]


def run_fig8(
    dims: tuple[int, ...] = (2, 3, 4, 5, 6, 7),
    message_bytes: int = 1024,
    machine: MachineParams = IPSC_D7,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Figure 8: personalized communication, BST vs SBT on the iPSC.

    The iPSC is effectively one-port-at-a-time (§3), with ~20 % overlap
    between actions on different ports.  In the SBT, the head of the
    big subtree "is not yet finished retransmitting the last packet
    received when a new packet arrives" and stalls; in the BST a
    subtree receives a packet only every log N cycles, so "full
    advantage of the 20 % overlap in communication actions is taken"
    (§5.2) — the BST finishes measurably earlier on the larger cubes.
    """
    report = TableReport(
        f"Figure 8 — personalized communication, M={message_bytes} bytes/node",
        ["dim", "SBT time (s)", "BST time (s)", "BST/SBT"],
    )
    grid = [dict(n=n, M=message_bytes, machine=machine) for n in dims]
    result = run_sweep(_fig8_point, grid, jobs=jobs, cache_dir=cache_dir)
    for rows in result.values:
        for row in rows:
            report.add(*row)
    report.sweep = result.stats
    return report
