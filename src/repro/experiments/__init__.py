"""Experiment harness: one function per table/figure of the paper.

Every runner takes ``jobs=``/``cache_dir=`` and executes its point grid
through :mod:`repro.experiments.parallel`; serial and parallel output
are identical (see that module for the determinism contract).
"""

from repro.experiments.export import to_csv, to_json, write_report
from repro.experiments.figures import run_fig5, run_fig6, run_fig7, run_fig8
from repro.experiments.injector import TenantProfile, poisson_jobs
from repro.experiments.parallel import (
    PointStats,
    SweepResult,
    SweepStats,
    resolve_jobs,
    run_sweep,
    sweep_grid,
)
from repro.experiments.registry import ScenarioRegistry
from repro.experiments.scatter_sweep import run_scatter_packet_sweep
from repro.experiments.scenarios import SCENARIOS, Scenario, get_scenario
from repro.experiments.harness import TableReport, format_table, relative_error
from repro.experiments.tables import (
    PAPER_TABLE5,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)

__all__ = [
    "PointStats",
    "SCENARIOS",
    "Scenario",
    "ScenarioRegistry",
    "SweepResult",
    "SweepStats",
    "TenantProfile",
    "get_scenario",
    "poisson_jobs",
    "resolve_jobs",
    "run_sweep",
    "sweep_grid",
    "to_csv",
    "to_json",
    "write_report",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_scatter_packet_sweep",
    "TableReport",
    "format_table",
    "relative_error",
    "PAPER_TABLE5",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
]
