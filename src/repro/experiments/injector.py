"""Open-loop Poisson job injection for the multi-tenant service.

The service's workload model is *open-loop*: tenants submit on their
own clocks, regardless of how backed up the cube is (the standard
stress model for admission control — a closed loop would self-throttle
and never exercise the queue caps).  Each :class:`TenantProfile` is an
independent Poisson process: interarrival times are drawn from
``Expovariate(rate)`` until the horizon, and every arrival picks its
collective kind, root and message size from the profile's choices.

Determinism: every profile derives its own ``random.Random`` from
``f"{seed}:{tenant}"`` (string seeding hashes via SHA-512, stable
across processes and platforms, unlike ``hash()``), so a scenario's
job list is a pure function of ``(profiles, horizon, dimension,
seed)`` — the property the determinism regression tests pin down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.service.jobs import JobSpec

__all__ = ["TenantProfile", "poisson_jobs"]


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's statistical workload description.

    Attributes:
        tenant: tenant name.
        rate: mean arrivals per unit of simulated time (Poisson
            intensity λ).
        ops: collective kinds to draw from, uniformly.
        message_elems: message sizes ``M`` to draw from, uniformly.
        packet_elems: packet size ``B`` for every job (``None`` = one
            packet per message).
        priority: strict-priority rank of every job.
        sources: root nodes to draw from (``None`` = uniform over the
            cube; ignored by the rootless ops).
    """

    tenant: str
    rate: float
    ops: tuple[str, ...] = ("broadcast",)
    message_elems: tuple[int, ...] = (64,)
    packet_elems: int | None = None
    priority: int = 0
    sources: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if not self.ops or not self.message_elems:
            raise ValueError("ops and message_elems must be non-empty")


def poisson_jobs(
    profiles: "list[TenantProfile] | tuple[TenantProfile, ...]",
    horizon: float,
    dimension: int,
    seed: int = 0,
) -> list[JobSpec]:
    """Draw every profile's arrivals over ``[0, horizon)`` and merge.

    Returns the combined job list sorted by ``(arrival, tenant,
    draw index)`` — the submission order a service run consumes.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    num_nodes = 1 << dimension
    drawn: list[tuple[float, str, int, JobSpec]] = []
    for profile in profiles:
        rng = random.Random(f"{seed}:{profile.tenant}")
        t = 0.0
        idx = 0
        while True:
            t += rng.expovariate(profile.rate)
            if t >= horizon:
                break
            op = profile.ops[rng.randrange(len(profile.ops))]
            m = profile.message_elems[
                rng.randrange(len(profile.message_elems))
            ]
            if profile.sources is not None:
                source = profile.sources[
                    rng.randrange(len(profile.sources))
                ]
            else:
                source = rng.randrange(num_nodes)
            drawn.append((t, profile.tenant, idx, JobSpec(
                tenant=profile.tenant,
                op=op,
                source=source if op in ("broadcast", "scatter") else 0,
                message_elems=m,
                packet_elems=profile.packet_elems,
                priority=profile.priority,
                arrival=t,
            )))
            idx += 1
    drawn.sort(key=lambda d: (d[0], d[1], d[2]))
    return [d[3] for d in drawn]
