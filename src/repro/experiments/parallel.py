"""Process-pool sweep executor for the reproduction experiments.

Every figure/table experiment is a sweep over independent simulation
points — a grid of ``(dim, algorithm, port model, M, B)`` combinations
whose schedule generation and engine runs share nothing but read-only
inputs.  :func:`run_sweep` fans such a grid out over worker processes
and reassembles the results **in grid order**, so the output of a
parallel run is byte-identical to the serial one; parallelism only
changes wall-clock time.

Design points:

* **Determinism.**  Each point carries its grid index; workers return
  ``(index, value)`` pairs and the caller's values land in a
  pre-allocated slot list.  Completion order is irrelevant.
* **Chunking.**  Points are batched into contiguous chunks (default:
  ~4 chunks per worker) so pickle/IPC overhead is amortized while load
  still balances across heterogeneous point costs.
* **Telemetry.**  Every point is timed in its worker and annotated
  with the worker id and the in-memory/on-disk cache-hit deltas it
  produced; :class:`SweepStats` aggregates them across workers.
* **Fallback.**  ``jobs=1`` (the default), a single-point grid, or a
  platform where worker processes cannot be started all run the exact
  same per-point code in-process — no separate serial code path that
  could drift.
* **Disk cache.**  An explicit ``cache_dir`` (or ``REPRO_CACHE_DIR``
  in the environment) turns on :mod:`repro.cache.disk` in the parent
  and in every worker, so cold worker processes reuse previously
  generated trees/schedules instead of regenerating them.

Point functions must be module-level callables and their kwargs
picklable (workers may be spawned, not forked).  The ``REPRO_JOBS``
environment variable supplies a default worker count for every sweep;
``jobs=0`` means "all cores".
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from itertools import product
from math import ceil
from typing import Any, Callable, Mapping, Sequence

from repro.cache.disk import configure_disk, disk_cache
from repro.obs.instruments import CACHE_OPS, sweep_finished
from repro.sim.dispatch import resolve_engine
from repro.sim.trace import LinkStats

__all__ = [
    "PointStats",
    "SweepResult",
    "SweepStats",
    "merged_link_stats",
    "resolve_jobs",
    "run_sweep",
    "sweep_grid",
]

#: default chunks submitted per worker (balances pickle overhead
#: against load balancing across unevenly priced points)
CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count for a sweep.

    Precedence: an explicit ``jobs`` argument, then the ``REPRO_JOBS``
    environment variable, then 1 (serial).  ``0`` means one worker per
    available core.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
        else:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def sweep_grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """The cartesian product of named axes as kwargs dicts.

    Row-major in the given axis order, matching the nesting of the
    serial ``for`` loops the experiments used to run::

        sweep_grid(n=(2, 3), B=(1, 2))
        # [{n: 2, B: 1}, {n: 2, B: 2}, {n: 3, B: 1}, {n: 3, B: 2}]
    """
    names = list(axes)
    return [dict(zip(names, combo)) for combo in product(*axes.values())]


@dataclass(frozen=True)
class PointStats:
    """Telemetry for one executed sweep point.

    Attributes:
        index: the point's position in the grid (== result position).
        wall_s: wall-clock seconds spent executing the point.
        worker: pid of the process that ran it.
        lru_hits / lru_misses: in-memory cache-counter deltas the point
            produced in its worker.
        disk_hits / disk_misses: on-disk layer deltas likewise.
    """

    index: int
    wall_s: float
    worker: int
    lru_hits: int
    lru_misses: int
    disk_hits: int
    disk_misses: int


@dataclass
class SweepStats:
    """Aggregated telemetry for one sweep execution.

    Cache counters are summed over the per-point deltas, i.e. over
    every worker that participated — the workers' registries are
    process-local and die with the pool, so this aggregate is the only
    place their hit counts survive.
    """

    jobs: int
    chunksize: int
    executor: str
    wall_s: float = 0.0
    points: list[PointStats] = field(default_factory=list)

    @property
    def num_points(self) -> int:
        """Points executed."""
        return len(self.points)

    @property
    def workers(self) -> tuple[int, ...]:
        """Distinct worker pids, ascending."""
        return tuple(sorted({p.worker for p in self.points}))

    @property
    def point_wall_s(self) -> float:
        """Summed per-point wall time (> ``wall_s`` when overlapped)."""
        return sum(p.wall_s for p in self.points)

    @property
    def lru_hits(self) -> int:
        """In-memory cache hits across all workers."""
        return sum(p.lru_hits for p in self.points)

    @property
    def lru_misses(self) -> int:
        """In-memory cache misses across all workers."""
        return sum(p.lru_misses for p in self.points)

    @property
    def disk_hits(self) -> int:
        """On-disk cache hits across all workers."""
        return sum(p.disk_hits for p in self.points)

    @property
    def disk_misses(self) -> int:
        """On-disk cache misses across all workers."""
        return sum(p.disk_misses for p in self.points)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the CI timing artifact)."""
        return {
            "jobs": self.jobs,
            "chunksize": self.chunksize,
            "executor": self.executor,
            "wall_s": self.wall_s,
            "point_wall_s": self.point_wall_s,
            "num_points": self.num_points,
            "workers": list(self.workers),
            "lru_hits": self.lru_hits,
            "lru_misses": self.lru_misses,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "points": [
                {
                    "index": p.index,
                    "wall_s": p.wall_s,
                    "worker": p.worker,
                    "lru_hits": p.lru_hits,
                    "lru_misses": p.lru_misses,
                    "disk_hits": p.disk_hits,
                    "disk_misses": p.disk_misses,
                }
                for p in self.points
            ],
        }

    def summary(self) -> str:
        """One-line human summary (what ``repro sweep`` prints)."""
        return (
            f"{self.num_points} points in {self.wall_s:.2f}s "
            f"({self.executor}, jobs={self.jobs}, chunksize={self.chunksize}, "
            f"{len(self.workers)} worker(s); "
            f"lru {self.lru_hits}h/{self.lru_misses}m, "
            f"disk {self.disk_hits}h/{self.disk_misses}m)"
        )


def merged_link_stats(values: Sequence[Any]) -> LinkStats:
    """Fleet-wide link traffic folded from per-point results.

    Accepts any mix of :class:`~repro.sim.trace.LinkStats` instances
    and objects exposing a ``link_stats`` attribute (collective and
    runtime results); everything else is skipped.  Workers are
    process-local, so this merge is the only way their per-point link
    counters combine into one cross-worker traffic picture.
    """
    merged = LinkStats()
    for value in values:
        stats = value if isinstance(value, LinkStats) else getattr(
            value, "link_stats", None
        )
        if isinstance(stats, LinkStats):
            merged.merge(stats)
    return merged


@dataclass
class SweepResult:
    """Ordered point results plus execution telemetry."""

    values: list[Any]
    stats: SweepStats

    def merged_link_stats(self) -> LinkStats:
        """Link traffic merged across every point result (see
        :func:`merged_link_stats`)."""
        return merged_link_stats(self.values)


def _cache_totals() -> tuple[int, int, int, int]:
    """(lru hits, lru misses, disk hits, disk misses) registry sums.

    Read from the observability registry's ``repro_cache_ops_total``
    series rather than the live cache objects: the series survive a
    cache being re-created under the same name mid-point (the fork
    start method hands workers a copy of the parent's cache registry,
    and re-registration used to make before/after snapshots disagree
    about which object's counters they were diffing).  One code path
    serves process-pool workers and in-process sweeps alike.
    """
    lru_h = lru_m = disk_h = disk_m = 0
    for series in CACHE_OPS.series():
        op = series.labels["op"]
        if op == "hit":
            if series.labels["cache"].startswith("cache.disk."):
                disk_h += series.value
            else:
                lru_h += series.value
        elif op == "miss":
            if series.labels["cache"].startswith("cache.disk."):
                disk_m += series.value
            else:
                lru_m += series.value
    return lru_h, lru_m, disk_h, disk_m


def _run_point(
    fn: Callable[..., Any], index: int, kwargs: Mapping[str, Any]
) -> tuple[Any, PointStats]:
    before = _cache_totals()
    t0 = time.perf_counter()
    value = fn(**kwargs)
    wall = time.perf_counter() - t0
    after = _cache_totals()
    return value, PointStats(
        index=index,
        wall_s=wall,
        worker=os.getpid(),
        lru_hits=after[0] - before[0],
        lru_misses=after[1] - before[1],
        disk_hits=after[2] - before[2],
        disk_misses=after[3] - before[3],
    )


def _worker_init(cache_dir: str | None, engine: str | None = None) -> None:
    """Pool initializer: disk-cache dir and event-engine default.

    The engine choice travels as ``REPRO_ENGINE`` (the
    :func:`repro.sim.dispatch.resolve_engine` default) rather than a
    per-point kwarg, so existing experiment point functions pick it up
    without signature changes.
    """
    if cache_dir is not None:
        configure_disk(cache_dir)
    if engine is not None:
        os.environ["REPRO_ENGINE"] = engine


def _run_chunk(
    fn: Callable[..., Any], chunk: list[tuple[int, dict[str, Any]]]
) -> list[tuple[Any, PointStats]]:
    return [_run_point(fn, index, kwargs) for index, kwargs in chunk]


def run_sweep(
    fn: Callable[..., Any],
    points: Sequence[Mapping[str, Any]],
    *,
    jobs: int | None = None,
    chunksize: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    engine: str | None = None,
) -> SweepResult:
    """Execute ``fn(**point)`` for every point, possibly in parallel.

    Args:
        fn: a module-level callable (workers pickle it by reference).
        points: kwargs mappings, one per grid point.  Values must be
            picklable when ``jobs > 1``.
        jobs: worker processes; see :func:`resolve_jobs` for defaults.
        chunksize: points per submitted task (default: grid split into
            ~:data:`CHUNKS_PER_WORKER` chunks per worker).
        cache_dir: enable the on-disk cache at this directory for the
            duration of the sweep, in the parent and every worker
            (default: whatever ``REPRO_CACHE_DIR`` says).
        engine: event-engine implementation for the sweep's duration
            (``"indexed"``/``"vectorized"``/``"reference"``), exported
            as ``REPRO_ENGINE`` to the parent and every worker so point
            functions that run collectives pick it up without
            signature changes (default: leave the environment alone).

    Returns:
        A :class:`SweepResult` whose ``values[i]`` is ``fn(**points[i])``
        — identical, entry for entry, to a serial run.
    """
    indexed = [(i, dict(p)) for i, p in enumerate(points)]
    jobs = resolve_jobs(jobs)
    dir_ctx = disk_cache(cache_dir) if cache_dir is not None else nullcontext()
    prev_engine = os.environ.get("REPRO_ENGINE")
    if engine is not None:
        engine = resolve_engine(engine)
        os.environ["REPRO_ENGINE"] = engine
    t0 = time.perf_counter()
    try:
        with dir_ctx:
            if jobs == 1 or len(indexed) <= 1:
                return _run_serial(fn, indexed, jobs, "serial", t0)
            chunksize = chunksize or max(
                1, ceil(len(indexed) / (jobs * CHUNKS_PER_WORKER))
            )
            chunks = [
                indexed[i : i + chunksize]
                for i in range(0, len(indexed), chunksize)
            ]
            init_dir = str(cache_dir) if cache_dir is not None else None
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(jobs, len(chunks)),
                    initializer=_worker_init,
                    initargs=(init_dir, engine),
                )
            except (OSError, ValueError, NotImplementedError):
                # no usable multiprocessing on this platform — degrade
                # gracefully rather than failing the sweep
                return _run_serial(fn, indexed, jobs, "serial-fallback", t0)
            values: list[Any] = [None] * len(indexed)
            point_stats: list[PointStats] = []
            with pool:
                futures = [
                    pool.submit(_run_chunk, fn, chunk) for chunk in chunks
                ]
                for future in futures:
                    for value, ps in future.result():
                        values[ps.index] = value
                        point_stats.append(ps)
            point_stats.sort(key=lambda p: p.index)
            stats = SweepStats(
                jobs=jobs,
                chunksize=chunksize,
                executor="process-pool",
                wall_s=time.perf_counter() - t0,
                points=point_stats,
            )
            sweep_finished(stats)
            return SweepResult(values=values, stats=stats)
    finally:
        if engine is not None:
            if prev_engine is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = prev_engine


def _run_serial(
    fn: Callable[..., Any],
    indexed: list[tuple[int, dict[str, Any]]],
    jobs: int,
    executor: str,
    t0: float,
) -> SweepResult:
    values = []
    point_stats = []
    for index, kwargs in indexed:
        value, ps = _run_point(fn, index, kwargs)
        values.append(value)
        point_stats.append(ps)
    stats = SweepStats(
        jobs=jobs,
        chunksize=len(indexed) or 1,
        executor=executor,
        wall_s=time.perf_counter() - t0,
        points=point_stats,
    )
    sweep_finished(stats)
    return SweepResult(values=values, stats=stats)
