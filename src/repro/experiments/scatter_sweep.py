"""Packet-size sweep for personalized communication (§4.2's T(B) forms).

Not a numbered table in the paper, but the backbone of its §4.3
comparison: the SBT scatter improves monotonically with bigger packets
(fewer start-ups at the bottleneck root), while the BST scatter
plateaus once a packet holds a whole subtree's worth — and at ``B = M``
the two coincide.  This experiment sweeps ``B`` and pairs the simulated
lock-step times with the §4.2 estimates.

Each packet size is an independent point, executed through
:func:`repro.experiments.parallel.run_sweep` (``jobs``/``REPRO_JOBS``
control the worker count; output is identical at any setting).
"""

from __future__ import annotations

import os

from repro.analysis.models import personalized_time_one_port
from repro.collectives.api import scatter
from repro.experiments.harness import TableReport
from repro.experiments.parallel import run_sweep
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.topology.hypercube import Hypercube

__all__ = ["run_scatter_packet_sweep"]


def _scatter_point(n: int, M: int, B: int, tau: float, t_c: float) -> list[list[object]]:
    """One sweep point: SBT and BST one-port scatter at packet size ``B``."""
    cube = Hypercube(n)
    machine = MachineParams(tau=tau, t_c=t_c)
    row: list[object] = [B]
    for algo in ("sbt", "bst"):
        res = scatter(
            cube, 0, algo, M, B, PortModel.ONE_PORT_FULL, machine=machine
        )
        model = personalized_time_one_port(algo, n, M, B, tau, t_c)
        row.extend([round(res.sync.time, 1), round(model, 1)])
    return [row]


def run_scatter_packet_sweep(
    n: int = 5,
    M: int = 8,
    tau: float = 1.0,
    t_c: float = 1.0,
    packet_sizes: tuple[int, ...] = (2, 4, 8, 32, 128, 100_000),
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Sweep ``B`` for one-port SBT and BST scatter; report sim vs model."""
    report = TableReport(
        f"Scatter T(B) sweep — n={n}, M={M}, tau={tau}, tc={t_c} (one port)",
        ["B", "SBT sim", "SBT model", "BST sim", "BST model"],
    )
    grid = [dict(n=n, M=M, B=B, tau=tau, t_c=t_c) for B in packet_sizes]
    result = run_sweep(_scatter_point, grid, jobs=jobs, cache_dir=cache_dir)
    for rows in result.values:
        for row in rows:
            report.add(*row)
    report.sweep = result.stats
    return report
