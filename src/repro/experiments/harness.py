"""Shared utilities for the table/figure reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["TableReport", "format_table", "relative_error"]


def relative_error(measured: float, predicted: float) -> float:
    """``|measured - predicted| / max(|predicted|, 1)``."""
    return abs(measured - predicted) / max(abs(predicted), 1.0)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table (what the benches print)."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


@dataclass
class TableReport:
    """Accumulates (paper, measured) pairs for one experiment.

    Attributes:
        name: experiment id, e.g. ``"table1"``.
        headers: column names.
        rows: the data rows.
        sweep: execution telemetry
            (:class:`~repro.experiments.parallel.SweepStats`) attached
            by the sweep-driven experiments; never part of the rendered
            output, so serial and parallel renderings stay identical.
    """

    name: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    sweep: object | None = field(default=None, repr=False, compare=False)

    def add(self, *row: object) -> None:
        """Append one row."""
        self.rows.append(list(row))

    def render(self) -> str:
        """Plain-text rendering."""
        return format_table(self.headers, self.rows, title=self.name)

    def max_relative_error(self, measured_col: int, predicted_col: int) -> float:
        """Worst relative error between two numeric columns."""
        worst = 0.0
        for row in self.rows:
            worst = max(
                worst,
                relative_error(float(row[measured_col]), float(row[predicted_col])),
            )
        return worst
