"""Export experiment reports to CSV / JSON for external plotting."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.experiments.harness import TableReport

__all__ = ["to_csv", "to_json", "write_report"]


def to_csv(report: TableReport) -> str:
    """Render a report as CSV text (header row + data rows)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(report.headers)
    for row in report.rows:
        writer.writerow(row)
    return buf.getvalue()


def to_json(report: TableReport) -> str:
    """Render a report as a JSON document with name/headers/rows."""
    return json.dumps(
        {
            "name": report.name,
            "headers": report.headers,
            "rows": report.rows,
        },
        indent=2,
        default=str,
    )


def write_report(report: TableReport, path: str | Path) -> Path:
    """Write a report to ``path``; format chosen by suffix (.csv/.json).

    Returns the written path.
    """
    path = Path(path)
    if path.suffix == ".csv":
        text = to_csv(report)
    elif path.suffix == ".json":
        text = to_json(report)
    else:
        raise ValueError(f"unsupported export format {path.suffix!r} (use .csv or .json)")
    path.write_text(text)
    return path
