"""Reproduction experiments for Tables 1-6.

Each ``run_tableN`` function measures the quantity the paper tabulates
(by generating and executing real schedules where the table is about
behaviour, or by evaluating the models where it is analytic), pairs it
with the paper's printed value, and returns a
:class:`~repro.experiments.harness.TableReport`.

Like the figures, every table is a sweep over independent points, run
through :func:`repro.experiments.parallel.run_sweep` — pass ``jobs``
(or set ``REPRO_JOBS``) to fan the grid out over worker processes; row
order and content are identical at any worker count.
"""

from __future__ import annotations

import os

from repro.analysis.compare import TABLE4_REGIMES, TABLE4_ROWS, table4_paper_entry, table4_ratio
from repro.analysis.models import (
    broadcast_model,
    cycles_per_packet,
    personalized_tmin,
    propagation_delay,
)
from repro.analysis.optimal import numeric_b_opt
from repro.collectives.api import broadcast, scatter
from repro.experiments.harness import TableReport
from repro.experiments.parallel import run_sweep, sweep_grid
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.topology.hypercube import Hypercube
from repro.trees.bst import BalancedSpanningTree, max_subtree_size

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "PAPER_TABLE5",
]

_ALGOS = ("hp", "sbt", "tcbt", "msbt")
_PM_LABEL = {
    PortModel.ONE_PORT_HALF: "1 s or r",
    PortModel.ONE_PORT_FULL: "1 s and r",
    PortModel.ALL_PORT: "all ports",
}


def _collect(report: TableReport, result) -> TableReport:
    """Append every point's rows to ``report`` and attach the stats."""
    for rows in result.values:
        for row in rows:
            report.add(*row)
    report.sweep = result.stats
    return report


def _table1_point(n: int, algo: str, pm: PortModel) -> list[list[object]]:
    cube = Hypercube(n)
    # The MSBT's unit of work is log N packets — one per subtree
    # (§3.3.2: "the minimum number of routing steps to broadcast
    # log N packets is 2 log N"); the single-tree algorithms
    # propagate one packet.
    m = n if algo == "msbt" else 1
    res = broadcast(cube, 0, algo, message_elems=m, packet_elems=1, port_model=pm)
    return [[algo.upper(), _PM_LABEL[pm], res.cycles, propagation_delay(algo, pm, n)]]


def run_table1(
    n: int = 4,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Table 1: propagation delay (cycles to broadcast one packet).

    Measured: generate each algorithm's schedule for a single packet
    (``M = B = 1``) and count the lock-step cycles it actually takes.
    """
    cube = Hypercube(n)
    report = TableReport(
        f"Table 1 — propagation delays, n={n} (N={cube.num_nodes})",
        ["algorithm", "port model", "measured", "paper"],
    )
    grid = sweep_grid(algo=_ALGOS, pm=tuple(PortModel))
    for point in grid:
        point["n"] = n
    return _collect(
        report, run_sweep(_table1_point, grid, jobs=jobs, cache_dir=cache_dir)
    )


def _table2_point(n: int, packets: int, algo: str, pm: PortModel) -> list[list[object]]:
    cube = Hypercube(n)
    c1 = broadcast(cube, 0, algo, packets, 1, pm).cycles
    c2 = broadcast(cube, 0, algo, 2 * packets, 1, pm).cycles
    measured = (c2 - c1) / packets
    return [[
        algo.upper(),
        _PM_LABEL[pm],
        round(measured, 3),
        cycles_per_packet(algo, pm, n),
    ]]


def run_table2(
    n: int = 4,
    packets: int = 48,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Table 2: steady-state cycles per distinct packet.

    Measured as the marginal cost of additional packets: cycles at
    ``2 * packets`` minus cycles at ``packets``, divided by ``packets``
    (which cancels the pipeline-fill constants).
    """
    report = TableReport(
        f"Table 2 — cycles per distinct packet, n={n}",
        ["algorithm", "port model", "measured", "paper"],
    )
    grid = sweep_grid(algo=_ALGOS, pm=tuple(PortModel))
    for point in grid:
        point.update(n=n, packets=packets)
    return _collect(
        report, run_sweep(_table2_point, grid, jobs=jobs, cache_dir=cache_dir)
    )


def _table3_point(
    n: int,
    M: int,
    packet_sizes: tuple[int, ...],
    tau: float,
    t_c: float,
    algo: str,
    pm: PortModel,
) -> list[list[object]]:
    cube = Hypercube(n)
    model = broadcast_model(algo, pm)
    b_opt_model = model.b_opt(M, n, tau, t_c)
    b_num, t_num = numeric_b_opt(model, M, n, tau, t_c)
    t_min_model = model.t_min(M, n, tau, t_c)
    rows = []
    for B in packet_sizes:
        res = broadcast(cube, 0, algo, M, B, pm)
        rows.append([
            algo.upper(),
            _PM_LABEL[pm],
            B,
            res.cycles,
            model.steps(M, B, n),
            round(b_opt_model, 1),
            b_num,
            round(t_min_model, 1),
            round(t_num, 1),
        ])
    return rows


def run_table3(
    n: int = 5,
    M: int = 960,
    packet_sizes: tuple[int, ...] = (16, 60, 240),
    tau: float = 8.0,
    t_c: float = 1.0,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Table 3: broadcast complexity ``T``, ``B_opt``, ``T_min``.

    For each (algorithm, port model) row: measured lock-step cycles vs
    the model's step count at several packet sizes, and the closed-form
    ``B_opt``/``T_min`` vs brute-force numeric optimization.
    """
    report = TableReport(
        f"Table 3 — broadcast complexity, n={n}, M={M}, tau={tau}, tc={t_c}",
        [
            "algorithm",
            "port model",
            "B",
            "measured steps",
            "model steps",
            "B_opt (model)",
            "B_opt (numeric)",
            "T_min (model)",
            "T_min (numeric)",
        ],
    )
    grid = sweep_grid(algo=_ALGOS, pm=tuple(PortModel))
    for point in grid:
        point.update(n=n, M=M, packet_sizes=tuple(packet_sizes), tau=tau, t_c=t_c)
    return _collect(
        report, run_sweep(_table3_point, grid, jobs=jobs, cache_dir=cache_dir)
    )


def _table4_point(n: int, algo: str, pm: PortModel) -> list[list[object]]:
    return [
        [
            f"{algo.upper()}/MSBT",
            _PM_LABEL[pm],
            regime,
            round(table4_ratio(algo, pm, regime, n), 3),
            round(table4_paper_entry(algo, pm, regime, n), 3),
        ]
        for regime in TABLE4_REGIMES
    ]


def run_table4(
    n: int = 6,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Table 4: broadcast complexity relative to the MSBT routing."""
    report = TableReport(
        f"Table 4 — complexity vs MSBT, n={n}",
        ["algorithms", "port model", "regime", "computed", "paper"],
    )
    grid = [dict(n=n, algo=algo, pm=pm) for algo, pm in TABLE4_ROWS]
    return _collect(
        report, run_sweep(_table4_point, grid, jobs=jobs, cache_dir=cache_dir)
    )


#: the paper's Table 5 column "BST(max)" for n = 2..20
PAPER_TABLE5 = {
    2: 2, 3: 3, 4: 5, 5: 7, 6: 13, 7: 19, 8: 35, 9: 59, 10: 107,
    11: 187, 12: 351, 13: 631, 14: 1181, 15: 2191, 16: 4115,
    17: 7711, 18: 14601, 19: 27595, 20: 52487,
}


def _table5_point(n: int, construct: bool) -> list[list[object]]:
    computed = max_subtree_size(n)
    if construct:
        tree = BalancedSpanningTree(Hypercube(n))
        constructed = max(map(len, tree.subtree_node_lists))
        if constructed != computed:
            raise AssertionError(
                f"n={n}: constructed max subtree {constructed} != closed form {computed}"
            )
    ideal = ((1 << n) - 1) / n
    return [[n, computed, PAPER_TABLE5[n], round(ideal, 2), round(computed / ideal, 2)]]


def run_table5(
    max_n: int = 20,
    construct_up_to: int = 12,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Table 5: maximum BST subtree size vs ``(N-1)/log N``.

    Closed form (necklace count - 1) for every ``n``; additionally
    cross-checked against an explicitly constructed tree for
    ``n <= construct_up_to``.
    """
    report = TableReport(
        "Table 5 — BST maximum subtree sizes",
        ["n", "BST(max) computed", "BST(max) paper", "(N-1)/log N", "ratio"],
    )
    grid = [
        dict(n=n, construct=n <= construct_up_to)
        for n in range(2, max_n + 1)
    ]
    return _collect(
        report, run_sweep(_table5_point, grid, jobs=jobs, cache_dir=cache_dir)
    )


def _table6_point(
    n: int, M: int, tau: float, t_c: float, algo: str, pm: PortModel
) -> list[list[object]]:
    cube = Hypercube(n)
    machine = MachineParams(tau=tau, t_c=t_c)
    big_b = cube.num_nodes * M  # unbounded packets
    res = scatter(cube, 0, algo, M, big_b, pm, machine=machine)
    paper = personalized_tmin(algo, pm, n, M, tau, t_c)
    is_bound = (algo, pm) in {
        ("tcbt", PortModel.ONE_PORT_FULL),
        ("bst", PortModel.ONE_PORT_FULL),
    } or (algo, pm) == ("bst", PortModel.ALL_PORT)
    return [[
        algo.upper(),
        _PM_LABEL[pm],
        round(res.sync.time, 2),
        round(paper, 2),
        "<=" if is_bound else "=",
    ]]


def run_table6(
    n: int = 5,
    M: int = 8,
    tau: float = 1.0,
    t_c: float = 1.0,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> TableReport:
    """Table 6: personalized-communication time at optimal packet size.

    Measured: lock-step time of the real scatter schedules with an
    effectively unbounded packet size, unit-cost machine.  The SBT rows
    are exact equalities; the TCBT/BST one-port rows are paper upper
    bounds, and the BST all-port row uses the idealized ``(N-1)/log N``
    subtree size (the measured value is the true max-subtree load).
    """
    report = TableReport(
        f"Table 6 — personalized communication, n={n}, M={M}",
        ["algorithm", "port model", "measured T", "paper T_min", "bound?"],
    )
    grid = sweep_grid(
        algo=("sbt", "tcbt", "bst"),
        pm=(PortModel.ONE_PORT_FULL, PortModel.ALL_PORT),
    )
    for point in grid:
        point.update(n=n, M=M, tau=tau, t_c=t_c)
    return _collect(
        report, run_sweep(_table6_point, grid, jobs=jobs, cache_dir=cache_dir)
    )
