"""Named multi-tenant workload scenarios for the service CLI and CI.

A :class:`Scenario` bundles a cube size with a seeded job-list builder
so a service run is reproducible from its name + seed alone
(``repro service run --scenario three-tenant-n10 --seed 7``).  The
builders draw from the open-loop Poisson injector
(:mod:`repro.experiments.injector`); a scenario with the same seed
always yields the same job list, byte for byte.

Registry:

=================== ====================================================
``smoke-mix``       n=6, two tenants, ~half a dozen mixed
                    broadcast/scatter jobs — the CI smoke workload
``three-tenant-n10`` n=10, three tenants, mixed broadcast/scatter at
                    realistic M/B — the acceptance-scale scenario
``priority-tiers``  n=8, a latency-critical tenant (priority 10) over
                    a bulk tenant (priority 0) — shows the strict
                    priority policy cutting the queue
``hog-vs-mice``     n=8, one tenant streaming huge broadcasts vs two
                    light tenants — the fair-share showcase
=================== ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.injector import TenantProfile, poisson_jobs
from repro.experiments.registry import ScenarioRegistry
from repro.service.jobs import JobSpec

__all__ = ["Scenario", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A named, seeded multi-tenant workload on a fixed cube size.

    Attributes:
        name: registry key.
        description: one-line summary for ``repro service list``.
        dimension: hypercube dimension the jobs are drawn for.
        builder: ``seed -> job list`` (pure, deterministic).
    """

    name: str
    description: str
    dimension: int
    builder: Callable[[int], list[JobSpec]]

    def build(self, seed: int = 0) -> list[JobSpec]:
        """The scenario's job list for ``seed``."""
        return self.builder(seed)


def _smoke_mix(seed: int) -> list[JobSpec]:
    return poisson_jobs(
        [
            TenantProfile(
                tenant="ant", rate=1 / 300.0,
                ops=("broadcast", "scatter"),
                message_elems=(16, 32), packet_elems=8,
            ),
            TenantProfile(
                tenant="bee", rate=1 / 400.0,
                ops=("scatter",), message_elems=(16,), packet_elems=8,
            ),
        ],
        horizon=1500.0, dimension=6, seed=seed,
    )


def _three_tenant_n10(seed: int) -> list[JobSpec]:
    return poisson_jobs(
        [
            TenantProfile(
                tenant="alpha", rate=1 / 800.0,
                ops=("broadcast",), message_elems=(64, 128),
                packet_elems=16,
            ),
            TenantProfile(
                tenant="beta", rate=1 / 1200.0,
                ops=("scatter",), message_elems=(8, 16),
                packet_elems=8,
            ),
            TenantProfile(
                tenant="gamma", rate=1 / 1100.0,
                ops=("broadcast", "scatter"), message_elems=(32,),
                packet_elems=16,
            ),
        ],
        horizon=3000.0, dimension=10, seed=seed,
    )


def _priority_tiers(seed: int) -> list[JobSpec]:
    return poisson_jobs(
        [
            TenantProfile(
                tenant="latency", rate=1 / 600.0,
                ops=("broadcast",), message_elems=(16,),
                packet_elems=8, priority=10,
            ),
            TenantProfile(
                tenant="bulk", rate=1 / 350.0,
                ops=("broadcast", "scatter"), message_elems=(128, 256),
                packet_elems=32,
            ),
        ],
        horizon=2500.0, dimension=8, seed=seed,
    )


def _hog_vs_mice(seed: int) -> list[JobSpec]:
    return poisson_jobs(
        [
            TenantProfile(
                tenant="hog", rate=1 / 400.0,
                ops=("broadcast",), message_elems=(512,),
                packet_elems=64,
            ),
            TenantProfile(
                tenant="mouse-1", rate=1 / 700.0,
                ops=("scatter",), message_elems=(8,), packet_elems=8,
            ),
            TenantProfile(
                tenant="mouse-2", rate=1 / 700.0,
                ops=("broadcast",), message_elems=(8,), packet_elems=8,
            ),
        ],
        horizon=2500.0, dimension=8, seed=seed,
    )


#: name -> scenario, the CLI registry (sorted iteration, duplicate
#: names rejected at import time — see ScenarioRegistry)
SCENARIOS: ScenarioRegistry[Scenario] = ScenarioRegistry(
    "scenario",
    (
        Scenario(
            name="smoke-mix",
            description="n=6, two tenants, small mixed broadcast/scatter "
                        "stream (CI smoke)",
            dimension=6,
            builder=_smoke_mix,
        ),
        Scenario(
            name="three-tenant-n10",
            description="n=10, three tenants, mixed broadcast/scatter at "
                        "realistic M/B",
            dimension=10,
            builder=_three_tenant_n10,
        ),
        Scenario(
            name="priority-tiers",
            description="n=8, latency-critical tenant (priority 10) over "
                        "a bulk tenant",
            dimension=8,
            builder=_priority_tiers,
        ),
        Scenario(
            name="hog-vs-mice",
            description="n=8, one streaming hog vs two light tenants "
                        "(fair-share showcase)",
            dimension=8,
            builder=_hog_vs_mice,
        ),
    ),
)


def get_scenario(name: str) -> Scenario:
    """The scenario registered under ``name``."""
    return SCENARIOS.get_or_raise(name)
