"""Shared scenario-registry machinery.

Both registry surfaces of the repo — the multi-tenant service's
:data:`~repro.experiments.scenarios.SCENARIOS` and the workload
layer's :data:`~repro.workloads.scenarios.WORKLOAD_SCENARIOS` — need
the same guarantees:

* **valid names**: lowercase kebab-case, so CLI flags, CI job names
  and baseline keys never need quoting or escaping;
* **no silent shadowing**: registering two entries under one name is a
  programming error and raises immediately, instead of the last writer
  winning;
* **deterministic listing**: iteration order is sorted by name, so
  ``repro service list`` / ``repro workload list`` and every test that
  snapshots the listing render identically on any platform or hash
  seed.

:class:`ScenarioRegistry` is a read-mostly :class:`~collections.abc.
Mapping`, so existing ``sorted(SCENARIOS)`` / ``SCENARIOS[name]`` call
sites keep working unchanged.
"""

from __future__ import annotations

import re
from collections.abc import Iterator, Mapping
from typing import Generic, Protocol, TypeVar

__all__ = ["Named", "ScenarioRegistry"]

#: names must be CLI/CI-safe: lowercase kebab-case, digits allowed
_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")


class Named(Protocol):
    """Anything registrable: it has a ``name`` and a ``description``."""

    @property
    def name(self) -> str: ...

    @property
    def description(self) -> str: ...


T = TypeVar("T", bound=Named)


class ScenarioRegistry(Mapping[str, T], Generic[T]):
    """A name-keyed registry with validation and sorted iteration.

    Args:
        kind: human label for error messages (``"scenario"``,
            ``"workload scenario"``, ...).
        items: entries to register up front.

    Raises:
        ValueError: on an invalid or duplicate name.
    """

    def __init__(self, kind: str = "scenario", items: "tuple[T, ...] | list[T]" = ()):
        self._kind = kind
        self._items: dict[str, T] = {}
        for item in items:
            self.register(item)

    def register(self, item: T) -> T:
        """Add ``item`` under ``item.name``; returns it for chaining."""
        name = item.name
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid {self._kind} name {name!r}: use lowercase "
                "kebab-case (letters, digits, dashes; must not start "
                "with a dash)"
            )
        if name in self._items:
            raise ValueError(
                f"duplicate {self._kind} name {name!r}: already registered"
            )
        self._items[name] = item
        return item

    def get_or_raise(self, name: str) -> T:
        """The entry under ``name``, with a helpful error when absent."""
        item = self._items.get(name)
        if item is None:
            raise ValueError(
                f"unknown {self._kind} {name!r}; pick one of {sorted(self._items)}"
            )
        return item

    def names(self) -> list[str]:
        """Registered names, sorted (the deterministic listing order)."""
        return sorted(self._items)

    def describe(self) -> list[tuple[str, str]]:
        """``(name, description)`` rows in listing order."""
        return [(n, self._items[n].description) for n in self.names()]

    # -- Mapping interface (sorted iteration) --------------------------

    def __getitem__(self, name: str) -> T:
        return self._items[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"ScenarioRegistry({self._kind}: {', '.join(self.names())})"
