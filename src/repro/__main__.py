"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:  # e.g. `python -m repro table 2 | head`
    sys.stderr.close()
    sys.exit(0)
