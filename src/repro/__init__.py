"""repro — reproduction of Ho & Johnsson (ICPP 1986).

Distributed routing algorithms for broadcasting and personalized
communication in Boolean ``n``-cube (hypercube) multiprocessors:
spanning binomial trees (SBT), multiple spanning binomial trees (MSBT),
balanced spanning trees (BST), the TCBT and Hamiltonian-path baselines,
a packet-switched cube simulator with the paper's three port models,
and the closed-form communication-complexity models of Tables 1–6.

Quick start::

    from repro import Hypercube, broadcast, PortModel

    cube = Hypercube(5)
    result = broadcast(cube, source=0, algorithm="msbt",
                       message_elems=4096, packet_elems=256,
                       port_model=PortModel.ONE_PORT_FULL)
    print(result.cycles, result.time)
"""

from repro._version import __version__
from repro.topology import (
    DirectedEdge,
    Hypercube,
    Topology,
    Torus,
    resolve_topology,
)
from repro.trees import (
    BalancedSpanningTree,
    HamiltonianPathTree,
    MSBTGraph,
    SpanningBinomialTree,
    SpanningTree,
    TwoRootedCompleteBinaryTree,
)

__all__ = [
    "__version__",
    "DirectedEdge",
    "Hypercube",
    "Torus",
    "Topology",
    "resolve_topology",
    "SpanningTree",
    "SpanningBinomialTree",
    "MSBTGraph",
    "BalancedSpanningTree",
    "TwoRootedCompleteBinaryTree",
    "HamiltonianPathTree",
    # extended below once the sim/routing layers import cleanly
]


def _extend_api() -> None:
    """Populate the top-level API from the higher layers."""
    from repro.analysis import models  # noqa: F401
    from repro.cache import cache_stats, caching_enabled, clear_caches, configure
    from repro.collectives.api import (
        all_broadcast,
        allgather,
        allreduce,
        alltoall_personalized,
        broadcast,
        default_algorithm,
        gather,
        reduce,
        scatter,
    )
    from repro.sim.faults import DegradedResult, FaultError, FaultPlan
    from repro.sim.machine import IPSC_D7, MachineParams
    from repro.sim.ports import PortModel

    globals().update(
        broadcast=broadcast,
        scatter=scatter,
        gather=gather,
        reduce=reduce,
        allgather=allgather,
        allreduce=allreduce,
        all_broadcast=all_broadcast,
        alltoall_personalized=alltoall_personalized,
        default_algorithm=default_algorithm,
        MachineParams=MachineParams,
        IPSC_D7=IPSC_D7,
        PortModel=PortModel,
        DegradedResult=DegradedResult,
        FaultError=FaultError,
        FaultPlan=FaultPlan,
        cache_stats=cache_stats,
        caching_enabled=caching_enabled,
        clear_caches=clear_caches,
        configure=configure,
    )
    __all__.extend(
        [
            "broadcast",
            "scatter",
            "gather",
            "reduce",
            "allgather",
            "allreduce",
            "all_broadcast",
            "alltoall_personalized",
            "default_algorithm",
            "MachineParams",
            "IPSC_D7",
            "PortModel",
            "DegradedResult",
            "FaultError",
            "FaultPlan",
            "cache_stats",
            "caching_enabled",
            "clear_caches",
            "configure",
        ]
    )


try:
    _extend_api()
except ModuleNotFoundError:  # pragma: no cover - only during partial builds
    pass
del _extend_api
