"""The k-ary ``n``-cube torus of Jung & Sakho.

A ``Torus(n, k)`` has ``N = k**n`` nodes addressed in mixed radix:
coordinate ``i`` of address ``a`` is ``(a // k**i) % k``.  Each node is
adjacent to its ``+1`` and ``-1`` (mod ``k``) neighbours along every
dimension, giving ``2n`` ports per node for ``k >= 3``.  The binary
torus ``Torus(n, 2)`` collapses both ring directions onto the same
neighbour and is exactly the Boolean ``n``-cube with one port per
dimension.

Port numbering for ``k >= 3``: port ``2*i`` steps ``+1`` along
dimension ``i``, port ``2*i + 1`` steps ``-1``.  For ``k == 2`` port
``i`` flips coordinate ``i`` (matching hypercube port numbering).

Like the hypercube's XOR translation, coordinate-wise addition mod ``k``
is a vertex-transitive automorphism, so spanning trees built at root 0
translate to any root — the tree caches exploit this.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.topology.base import Topology

__all__ = ["Torus"]


class Torus(Topology):
    """A k-ary ``n``-cube torus: ``n`` dimensions of ``k``-node rings.

    >>> t = Torus(2, 3)
    >>> t.num_nodes
    9
    >>> sorted(t.neighbors(0))
    [1, 2, 3, 6]
    >>> t.coords(5)
    (2, 1)
    """

    kind = "torus"

    def __init__(self, n: int, k: int):
        if n < 1:
            raise ValueError(f"torus dimension must be >= 1, got {n}")
        if k < 2:
            raise ValueError(f"torus arity must be >= 2, got {k}")
        num_nodes = k**n
        if num_nodes > 1 << 24:
            raise ValueError(
                f"Torus({n}, {k}) would allocate {num_nodes} nodes; "
                "this library targets N <= 2**24"
            )
        self._n = n
        self._k = k
        self._num_nodes = num_nodes
        # One port per dimension when +1 == -1 (binary rings), else two.
        self._ports_per_dim = 1 if k == 2 else 2

    # -- basic shape -------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Number of torus dimensions ``n``."""
        return self._n

    @property
    def arity(self) -> int:
        """Ring length ``k`` of every dimension."""
        return self._k

    @property
    def num_nodes(self) -> int:
        """``N = k**n``."""
        return self._num_nodes

    @property
    def num_ports(self) -> int:
        """``2n`` ports per node for ``k >= 3``; ``n`` for ``k == 2``."""
        return self._n * self._ports_per_dim

    @property
    def diameter(self) -> int:
        """Graph diameter, ``n * floor(k / 2)``."""
        return self._n * (self._k // 2)

    # -- coordinates -------------------------------------------------------

    def coords(self, node: int) -> tuple[int, ...]:
        """Mixed-radix coordinates ``(c_0, ..., c_{n-1})`` of ``node``."""
        self.check_node(node)
        out = []
        for _ in range(self._n):
            out.append(node % self._k)
            node //= self._k
        return tuple(out)

    def from_coords(self, coords: tuple[int, ...]) -> int:
        """Address of the node at ``coords`` (each reduced mod ``k``)."""
        if len(coords) != self._n:
            raise ValueError(f"expected {self._n} coordinates, got {len(coords)}")
        addr = 0
        for c in reversed(coords):
            addr = addr * self._k + (c % self._k)
        return addr

    # -- adjacency ---------------------------------------------------------

    def ring_step(self, node: int, dim: int, delta: int) -> int:
        """Node at ``+delta`` (mod ``k``) around the dimension-``dim`` ring."""
        stride = self._k**dim
        digit = (node // stride) % self._k
        return node + ((digit + delta) % self._k - digit) * stride

    def neighbor(self, node: int, port: int) -> int:
        """Node reached through ``port`` (dimension ``port // ports_per_dim``)."""
        self.check_node(node)
        self.check_port(port)
        dim, direction = divmod(port, self._ports_per_dim)
        return self.ring_step(node, dim, -1 if direction else +1)

    def are_adjacent(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` differ by ``+-1 (mod k)`` in one dimension."""
        self.check_node(a)
        self.check_node(b)
        diff_dim = -1
        x, y = a, b
        for dim in range(self._n):
            cx, cy = x % self._k, y % self._k
            x //= self._k
            y //= self._k
            if cx == cy:
                continue
            if diff_dim >= 0:
                return False
            delta = (cy - cx) % self._k
            if delta not in (1, self._k - 1):
                return False
            diff_dim = dim
        return diff_dim >= 0

    def port_towards(self, src: int, dst: int) -> int:
        """The port crossing the single differing dimension ``src -> dst``."""
        self.check_node(src)
        self.check_node(dst)
        diff_port = -1
        x, y = src, dst
        for dim in range(self._n):
            cx, cy = x % self._k, y % self._k
            x //= self._k
            y //= self._k
            if cx == cy:
                continue
            delta = (cy - cx) % self._k
            if diff_port >= 0 or delta not in (1, self._k - 1):
                diff_port = -2
                break
            # delta == 1 is the + direction (port 2*dim); for k == 2 both
            # deltas coincide and the single port per dimension is used.
            direction = 0 if delta == 1 else 1
            diff_port = dim * self._ports_per_dim + direction
        if diff_port < 0:
            raise ValueError(f"nodes {src} and {dst} are not adjacent in {self!r}")
        return diff_port

    def edge_ports(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Vectorized ``port_towards`` over pair arrays; ``-1`` for non-edges."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        in_range = (src >= 0) & (src < self._num_nodes) & (dst >= 0) & (dst < self._num_nodes)
        x = np.where(in_range, src, 0)
        y = np.where(in_range, dst, 0)
        ndiff = np.zeros(src.shape, dtype=np.int64)
        port = np.full(src.shape, -1, dtype=np.int32)
        k = self._k
        for dim in range(self._n):
            cx = x % k
            cy = y % k
            x //= k
            y //= k
            delta = (cy - cx) % k
            differs = delta != 0
            ndiff += differs
            dim_port = np.where(
                delta == 1,
                dim * self._ports_per_dim,
                np.where(delta == k - 1, dim * self._ports_per_dim + 1, -1),
            ).astype(np.int32)
            port = np.where(differs & (ndiff == 1), dim_port, port)
        valid = in_range & (ndiff == 1) & (port >= 0)
        return np.where(valid, port, np.int32(-1))

    # -- metric structure ----------------------------------------------------

    def distance(self, a: int, b: int) -> int:
        """Shortest-path length: sum of per-dimension ring distances."""
        self.check_node(a)
        self.check_node(b)
        total = 0
        x, y = a, b
        for _ in range(self._n):
            delta = (y % self._k - x % self._k) % self._k
            x //= self._k
            y //= self._k
            total += min(delta, self._k - delta)
        return total

    def translate(self, node: int, by: int) -> int:
        """Coordinate-wise addition mod ``k`` (graph automorphism)."""
        self.check_node(node)
        self.check_node(by)
        out = 0
        stride = 1
        for _ in range(self._n):
            digit = (node % self._k + by % self._k) % self._k
            node //= self._k
            by //= self._k
            out += digit * stride
            stride *= self._k
        return out

    def cache_token(self) -> tuple[Any, ...]:
        """``("torus", n, k)`` — distinct from any hypercube of the same n."""
        return ("torus", self._n, self._k)

    def __repr__(self) -> str:
        return f"Torus(n={self._n}, k={self._k}, N={self._num_nodes})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Torus) and (other._n, other._k) == (self._n, self._k)

    def __hash__(self) -> int:
        return hash(("Torus", self._n, self._k))
