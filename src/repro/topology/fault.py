"""Fault-avoiding point-to-point routing via the ``n`` disjoint paths.

§1 recalls that a Boolean cube has ``log N`` disjoint paths between any
node pair (of length ``d`` or ``d + 2``).  The practical payoff is
fault tolerance: up to ``log N - 1`` failed links (or bypassed nodes)
between a pair still leave an intact path.  This helper picks the
shortest surviving one.
"""

from __future__ import annotations

from collections.abc import Collection

from repro.topology.hypercube import Hypercube

__all__ = [
    "surviving_path",
    "max_tolerable_failures",
    "fault_avoiding_spanning_tree",
]


def _normalize_links(dead_links: Collection[tuple[int, int]]) -> set[tuple[int, int]]:
    return {(min(a, b), max(a, b)) for a, b in dead_links}


def surviving_path(
    cube: Hypercube,
    src: int,
    dst: int,
    dead_links: Collection[tuple[int, int]] = (),
    dead_nodes: Collection[int] = (),
) -> list[int] | None:
    """The shortest of the ``n`` disjoint paths avoiding all failures.

    Args:
        cube: the host cube.
        src: start node (must be alive).
        dst: end node (must be alive).
        dead_links: failed links as (a, b) pairs, direction-agnostic.
        dead_nodes: failed intermediate nodes.

    Returns:
        The surviving path, or ``None`` when every one of the ``n``
        disjoint paths is broken (which requires at least ``n``
        failures touching this pair).
    """
    cube.check_node(src)
    cube.check_node(dst)
    if src == dst:
        raise ValueError("src and dst must differ")
    bad_links = _normalize_links(dead_links)
    bad_nodes = set(dead_nodes)
    if src in bad_nodes or dst in bad_nodes:
        raise ValueError("endpoints must be alive")

    best: list[int] | None = None
    for path in cube.disjoint_paths(src, dst):
        if any(v in bad_nodes for v in path[1:-1]):
            continue
        if any(
            (min(a, b), max(a, b)) in bad_links for a, b in zip(path, path[1:])
        ):
            continue
        if best is None or len(path) < len(best):
            best = path
    return best


def fault_avoiding_spanning_tree(
    cube: Hypercube,
    root: int,
    dead_links: Collection[tuple[int, int]] = (),
    dead_nodes: Collection[int] = (),
    partial: bool = False,
) -> dict[int, int | None]:
    """A BFS spanning tree of the surviving cube (parent map).

    With fewer than ``log N`` failures the surviving cube is still
    connected, so a spanning tree of the live nodes always exists; BFS
    keeps it shallow (each live node is reached by a shortest surviving
    path).  Use with the generic tree machinery to broadcast around
    failures::

        parents = fault_avoiding_spanning_tree(cube, 0, dead_links=[(0, 1)])

    Args:
        cube: the host cube.
        root: tree root (must be alive).
        dead_links: failed links as (a, b) pairs, direction-agnostic.
        dead_nodes: failed nodes.
        partial: when True, a disconnected surviving cube yields the
            tree of the root's reachable component instead of raising —
            degraded-mode callers then report the missing nodes.

    Returns:
        Parent map over the live nodes (``None`` at the root).

    Raises:
        ValueError: when failures disconnect some live node from the
            root (possible once ``len(failures) >= log N``) and
            ``partial`` is False.
    """
    from collections import deque

    cube.check_node(root)
    bad_links = _normalize_links(dead_links)
    bad_nodes = set(dead_nodes)
    if root in bad_nodes:
        raise ValueError("the root must be alive")
    parents: dict[int, int | None] = {root: None}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for nxt in cube.neighbors(node):
            if nxt in parents or nxt in bad_nodes:
                continue
            if (min(node, nxt), max(node, nxt)) in bad_links:
                continue
            parents[nxt] = node
            queue.append(nxt)
    live = cube.num_nodes - len(bad_nodes)
    if len(parents) != live and not partial:
        missing = sorted(
            v for v in cube.nodes() if v not in parents and v not in bad_nodes
        )
        raise ValueError(
            f"failures disconnect {len(missing)} live nodes from the root "
            f"(e.g. {missing[:4]})"
        )
    return parents


def max_tolerable_failures(cube: Hypercube) -> int:
    """Failures any node pair provably survives: ``log N - 1``.

    With the cube's connectivity equal to ``n``, any ``n - 1`` link or
    node removals leave the graph connected — and specifically leave at
    least one of the ``n`` disjoint paths between each pair intact.
    """
    return cube.dimension - 1
