"""Graph-embedding quality metrics (dilation, congestion, load).

The paper's baselines are *embedded* guest graphs: the two-rooted
complete binary tree (TCBT) and the Hamiltonian path are guest trees
embedded in the cube with dilation 1.  These metrics let tests assert
that property and let users evaluate their own embeddings.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping

from repro.topology.hypercube import Hypercube

__all__ = ["EmbeddingMetrics", "evaluate_embedding"]


class EmbeddingMetrics:
    """Summary metrics of a guest-graph embedding into a cube.

    Attributes:
        dilation: maximum cube distance an embedded guest edge spans.
        congestion: maximum number of guest edges routed through any
            single cube link (shortest-path routing, ascending order).
        load: maximum number of guest nodes mapped to one cube node.
        expansion: ratio of host nodes to guest nodes.
    """

    def __init__(self, dilation: int, congestion: int, load: int, expansion: float):
        self.dilation = dilation
        self.congestion = congestion
        self.load = load
        self.expansion = expansion

    def __repr__(self) -> str:
        return (
            f"EmbeddingMetrics(dilation={self.dilation}, congestion={self.congestion}, "
            f"load={self.load}, expansion={self.expansion:.3f})"
        )


def evaluate_embedding(
    cube: Hypercube,
    placement: Mapping[int, int],
    guest_edges: Iterable[tuple[int, int]],
) -> EmbeddingMetrics:
    """Evaluate an embedding of a guest graph into ``cube``.

    Args:
        cube: the host hypercube.
        placement: guest node -> cube node map.
        guest_edges: guest edges as ``(u, v)`` pairs of guest node ids.

    Returns:
        An :class:`EmbeddingMetrics` with dilation, congestion (under
        ascending e-cube shortest-path routing of each guest edge),
        node load, and expansion.
    """
    if not placement:
        raise ValueError("placement must map at least one guest node")
    for g, h in placement.items():
        cube.check_node(h)

    load = Counter(placement.values())
    link_use: Counter[tuple[int, int]] = Counter()
    dilation = 0
    n_edges = 0
    for u, v in guest_edges:
        n_edges += 1
        if u not in placement or v not in placement:
            raise ValueError(f"guest edge ({u}, {v}) references unplaced nodes")
        a, b = placement[u], placement[v]
        d = cube.distance(a, b)
        dilation = max(dilation, d)
        path = cube.shortest_path(a, b)
        for x, y in zip(path, path[1:]):
            link_use[(min(x, y), max(x, y))] += 1
    congestion = max(link_use.values()) if link_use else 0
    expansion = cube.num_nodes / len(placement)
    return EmbeddingMetrics(
        dilation=dilation,
        congestion=congestion,
        load=max(load.values()),
        expansion=expansion,
    )
