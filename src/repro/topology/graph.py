"""Structural checks for spanning structures on the cube.

These validators are used both by the test suite and by the routing
layer's debug assertions: a routing schedule is only meaningful over a
structure that really is a spanning tree (or, for the MSBT, a union of
edge-disjoint spanning trees) of the cube.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping

from repro.topology.hypercube import DirectedEdge, Hypercube

__all__ = [
    "is_cube_edge",
    "check_spanning_tree",
    "edges_are_disjoint",
    "tree_edges_from_parents",
    "bfs_levels",
]


def is_cube_edge(cube: Hypercube, edge: DirectedEdge) -> bool:
    """True when ``edge`` connects adjacent cube nodes."""
    return (
        cube.contains(edge.src)
        and cube.contains(edge.dst)
        and cube.are_adjacent(edge.src, edge.dst)
    )


def tree_edges_from_parents(parents: Mapping[int, int | None]) -> list[DirectedEdge]:
    """Directed edges ``parent -> child`` of a tree given a parent map."""
    return [
        DirectedEdge(p, child)
        for child, p in parents.items()
        if p is not None
    ]


def check_spanning_tree(
    cube: Hypercube,
    root: int,
    parents: Mapping[int, int | None],
) -> None:
    """Validate that ``parents`` describes a spanning tree of ``cube``.

    Checks, raising ``ValueError`` with a precise message on failure:

    * every cube node appears exactly once in ``parents``;
    * exactly the root has a ``None`` parent;
    * every (parent, child) pair is a cube edge;
    * following parents from any node reaches the root (no cycles).
    """
    cube.check_node(root)
    if set(parents) != set(cube.nodes()):
        missing = set(cube.nodes()) - set(parents)
        extra = set(parents) - set(cube.nodes())
        raise ValueError(
            f"parent map does not cover the cube exactly "
            f"(missing={sorted(missing)[:8]}, extra={sorted(extra)[:8]})"
        )
    roots = [i for i, p in parents.items() if p is None]
    if roots != [root]:
        raise ValueError(f"expected unique root {root}, found parentless nodes {roots}")
    for child, p in parents.items():
        if p is None:
            continue
        if not cube.are_adjacent(child, p):
            raise ValueError(f"tree edge {p} -> {child} is not a cube edge")
    # Cycle/connectivity check: every node must reach the root within N hops.
    depth_cache: dict[int, int] = {root: 0}
    for start in cube.nodes():
        trail = []
        node = start
        while node not in depth_cache:
            trail.append(node)
            parent = parents[node]
            assert parent is not None  # roots are all in depth_cache
            node = parent
            if len(trail) > cube.num_nodes:
                raise ValueError(f"cycle detected following parents from node {start}")
        d = depth_cache[node]
        for hop in reversed(trail):
            d += 1
            depth_cache[hop] = d


def edges_are_disjoint(edge_sets: Iterable[Iterable[DirectedEdge]]) -> bool:
    """True when no directed edge appears in more than one of the sets."""
    seen: set[DirectedEdge] = set()
    for edges in edge_sets:
        for e in edges:
            if e in seen:
                return False
            seen.add(e)
    return True


def bfs_levels(
    root: int,
    children: Mapping[int, Iterable[int]],
) -> dict[int, int]:
    """Level (depth) of every node reachable from ``root`` via ``children``."""
    level = {root: 0}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for c in children.get(node, ()):  # type: ignore[arg-type]
            if c in level:
                raise ValueError(f"node {c} reached twice during BFS — not a tree")
            level[c] = level[node] + 1
            queue.append(c)
    return level
