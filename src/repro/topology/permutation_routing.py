"""Oblivious permutation routing on the cube: e-cube and Valiant.

§1 cites Valiant's universal randomized routing for arbitrary
permutations.  This module provides the two classic oblivious routers
as substrate (and as a congestion baseline for the collective
schedules):

* **e-cube** (dimension-ordered) routing: correct the differing address
  bits in ascending order.  Deterministic, minimal, but specific
  permutations (e.g. the transpose permutation) concentrate
  ``~sqrt(N)`` paths on single links.
* **Valiant's two-phase scheme**: route to a uniformly random
  intermediate node first, then to the destination — both phases
  e-cube.  Congestion drops to near-uniform with high probability for
  *every* permutation, at the price of doubling the traffic.

Both are path generators plus congestion accounting; the store-and-
forward delivery itself can be simulated by packing the hop transfers
with :func:`repro.routing.scheduler.list_schedule`.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Mapping, Sequence

from repro.topology.hypercube import Hypercube

__all__ = [
    "ecube_path",
    "route_permutation",
    "valiant_route_permutation",
    "link_congestion",
    "transpose_permutation",
    "bit_reversal_permutation",
]


def ecube_path(cube: Hypercube, src: int, dst: int) -> list[int]:
    """Dimension-ordered (ascending) minimal path ``src -> dst``."""
    return cube.shortest_path(src, dst, dimension_order="ascending")


def route_permutation(
    cube: Hypercube,
    permutation: Mapping[int, int] | Sequence[int],
) -> dict[int, list[int]]:
    """E-cube paths for a full permutation (source -> its path)."""
    perm = _as_mapping(cube, permutation)
    return {s: ecube_path(cube, s, d) for s, d in perm.items()}


def valiant_route_permutation(
    cube: Hypercube,
    permutation: Mapping[int, int] | Sequence[int],
    rng: random.Random | None = None,
) -> dict[int, list[int]]:
    """Valiant two-phase paths: ``src -> random node -> dst``.

    Each source draws an independent uniform intermediate; the two
    e-cube legs are concatenated (dropping the duplicated midpoint).
    """
    perm = _as_mapping(cube, permutation)
    rng = rng or random.Random(0x1986)
    out: dict[int, list[int]] = {}
    for s, d in perm.items():
        mid = rng.randrange(cube.num_nodes)
        first = ecube_path(cube, s, mid)
        second = ecube_path(cube, mid, d)
        out[s] = first + second[1:]
    return out


def link_congestion(paths: Mapping[int, list[int]]) -> Counter:
    """Directed-link load: how many paths use each directed edge."""
    load: Counter[tuple[int, int]] = Counter()
    for path in paths.values():
        for a, b in zip(path, path[1:]):
            load[(a, b)] += 1
    return load


def transpose_permutation(cube: Hypercube) -> dict[int, int]:
    """The matrix-transpose permutation: swap the two address halves.

    The classic bad case for e-cube routing: ``sqrt(N)`` sources share
    single links.  Requires an even cube dimension.
    """
    n = cube.dimension
    if n % 2:
        raise ValueError(f"transpose permutation needs an even dimension, got {n}")
    half = n // 2
    mask = (1 << half) - 1
    return {
        v: ((v & mask) << half) | (v >> half)
        for v in cube.nodes()
    }


def bit_reversal_permutation(cube: Hypercube) -> dict[int, int]:
    """The bit-reversal permutation — another adversarial e-cube case."""
    n = cube.dimension
    out = {}
    for v in cube.nodes():
        r = 0
        for j in range(n):
            if (v >> j) & 1:
                r |= 1 << (n - 1 - j)
        out[v] = r
    return out


def _as_mapping(
    cube: Hypercube,
    permutation: Mapping[int, int] | Sequence[int],
) -> dict[int, int]:
    if isinstance(permutation, Mapping):
        perm = dict(permutation)
    else:
        perm = dict(enumerate(permutation))
    if sorted(perm) != list(cube.nodes()) or sorted(perm.values()) != list(cube.nodes()):
        raise ValueError("not a permutation of the cube's nodes")
    return perm
