"""The Boolean ``n``-cube graph model.

A Boolean cube (hypercube) of dimension ``n`` has ``N = 2**n`` nodes,
diameter ``n``, ``C(n, i)`` nodes at distance ``i`` from any node, and
``n`` disjoint paths between any pair of nodes.  Each undirected
communication *link* between neighbours is modelled as a pair of
directed *edges* (the paper's graph model, §2).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from math import comb

from typing import Any

from repro.bits.ops import (
    bit,
    flip_bit,
    hamming_distance,
    lowest_set_bit,
    mask,
    popcount,
)
from repro.topology.base import Topology

__all__ = ["Hypercube", "DirectedEdge"]


@dataclass(frozen=True, order=True)
class DirectedEdge:
    """A directed cube edge ``src -> dst`` crossing one dimension.

    Attributes:
        src: source node address.
        dst: destination node address (differs from ``src`` in one bit).
    """

    src: int
    dst: int

    @property
    def dimension(self) -> int:
        """The dimension (port number) this edge crosses."""
        diff = self.src ^ self.dst
        if popcount(diff) != 1:
            raise ValueError(f"{self} is not a cube edge")
        return lowest_set_bit(diff)

    def reversed(self) -> "DirectedEdge":
        """The opposite directed edge of the same link."""
        return DirectedEdge(self.dst, self.src)

    @property
    def link(self) -> tuple[int, int]:
        """Canonical undirected link identifier ``(min, max)``."""
        return (min(self.src, self.dst), max(self.src, self.dst))


class Hypercube(Topology):
    """A Boolean cube of dimension ``n`` with ``N = 2**n`` nodes.

    >>> q = Hypercube(3)
    >>> q.num_nodes
    8
    >>> sorted(q.neighbors(0))
    [1, 2, 4]
    >>> q.distance(0b000, 0b101)
    2
    """

    kind = "hypercube"

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"cube dimension must be >= 1, got {n}")
        if n > 24:
            raise ValueError(
                f"cube dimension {n} would allocate {1 << n} nodes; "
                "this library targets n <= 24"
            )
        self._n = n

    # -- basic shape -------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Cube dimension ``n = log2 N``."""
        return self._n

    @property
    def num_nodes(self) -> int:
        """``N = 2**n``."""
        return 1 << self._n

    @property
    def num_ports(self) -> int:
        """Ports per node — one per dimension, ``n``."""
        return self._n

    @property
    def num_links(self) -> int:
        """Number of undirected links, ``N * n / 2``."""
        return (self.num_nodes * self._n) // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of directed edges, ``N * n``."""
        return self.num_nodes * self._n

    @property
    def diameter(self) -> int:
        """Graph diameter, ``n``."""
        return self._n

    def nodes(self) -> range:
        """All node addresses ``0 .. N-1``."""
        return range(self.num_nodes)

    def contains(self, node: int) -> bool:
        """True when ``node`` is a valid address in this cube."""
        return 0 <= node < self.num_nodes

    def check_node(self, node: int) -> int:
        """Validate and return ``node``; raise ``ValueError`` otherwise."""
        if not self.contains(node):
            raise ValueError(f"node {node} outside a {self._n}-cube (N={self.num_nodes})")
        return node

    # -- adjacency ---------------------------------------------------------

    def neighbor(self, node: int, port: int) -> int:
        """The node reached from ``node`` through ``port`` (flip bit ``port``)."""
        self.check_node(node)
        self.check_port(port)
        return flip_bit(node, port)

    def neighbors(self, node: int) -> list[int]:
        """All ``n`` neighbours of ``node``, in port order."""
        self.check_node(node)
        return [flip_bit(node, j) for j in range(self._n)]

    def check_port(self, port: int) -> int:
        """Validate and return a port number ``0 .. n-1``."""
        if not 0 <= port < self._n:
            raise ValueError(f"port {port} outside 0..{self._n - 1}")
        return port

    def are_adjacent(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` differ in exactly one bit."""
        self.check_node(a)
        self.check_node(b)
        return popcount(a ^ b) == 1

    def port_towards(self, src: int, dst: int) -> int:
        """The port connecting adjacent nodes ``src`` and ``dst``."""
        if not self.are_adjacent(src, dst):
            raise ValueError(f"nodes {src} and {dst} are not adjacent")
        return lowest_set_bit(src ^ dst)

    def edges(self) -> Iterator[DirectedEdge]:
        """All ``N * n`` directed edges."""
        for node in self.nodes():
            for port in range(self._n):
                yield DirectedEdge(node, flip_bit(node, port))

    def links(self) -> Iterator[tuple[int, int]]:
        """All undirected links as canonical ``(low, high)`` pairs."""
        for node in self.nodes():
            for port in range(self._n):
                other = flip_bit(node, port)
                if node < other:
                    yield (node, other)

    # -- metric structure ----------------------------------------------------

    def distance(self, a: int, b: int) -> int:
        """Hamming distance between nodes ``a`` and ``b``."""
        self.check_node(a)
        self.check_node(b)
        return hamming_distance(a, b)

    def nodes_at_distance(self, node: int, d: int) -> list[int]:
        """All nodes at Hamming distance exactly ``d`` from ``node``.

        There are ``C(n, d)`` of them.
        """
        self.check_node(node)
        if not 0 <= d <= self._n:
            raise ValueError(f"distance {d} outside 0..{self._n}")
        return [node ^ m for m in _masks_of_weight(self._n, d)]

    def sphere_size(self, d: int) -> int:
        """``C(n, d)`` — number of nodes at distance ``d`` from any node."""
        if not 0 <= d <= self._n:
            raise ValueError(f"distance {d} outside 0..{self._n}")
        return comb(self._n, d)

    def shortest_path(self, src: int, dst: int, dimension_order: str = "ascending") -> list[int]:
        """One shortest path correcting differing bits in a fixed order.

        Args:
            src: start node.
            dst: end node.
            dimension_order: ``"ascending"`` or ``"descending"`` bit
                correction order (e-cube routing variants).
        """
        self.check_node(src)
        self.check_node(dst)
        diff = src ^ dst
        dims = [j for j in range(self._n) if bit(diff, j)]
        if dimension_order == "descending":
            dims.reverse()
        elif dimension_order != "ascending":
            raise ValueError(f"unknown dimension_order {dimension_order!r}")
        path = [src]
        cur = src
        for j in dims:
            cur = flip_bit(cur, j)
            path.append(cur)
        return path

    def disjoint_paths(self, src: int, dst: int) -> list[list[int]]:
        """``n`` pairwise internally node-disjoint paths ``src -> dst``.

        Classic construction [Saad & Schultz]: with ``d`` the Hamming
        distance and ``dims`` the differing dimensions in ascending
        order, path ``r`` (for ``r < d``) corrects the differing
        dimensions in the rotation ``dims[r:] + dims[:r]``; each of the
        remaining ``n - d`` paths first steps across a non-differing
        dimension ``e``, corrects all differing dimensions, and steps
        back across ``e``.  Paths have length ``d`` or ``d + 2``.
        """
        self.check_node(src)
        self.check_node(dst)
        if src == dst:
            raise ValueError("disjoint paths require distinct endpoints")
        diff = src ^ dst
        dims = [j for j in range(self._n) if bit(diff, j)]
        d = len(dims)
        paths: list[list[int]] = []
        for r in range(d):
            order = dims[r:] + dims[:r]
            cur = src
            path = [cur]
            for j in order:
                cur = flip_bit(cur, j)
                path.append(cur)
            paths.append(path)
        for e in range(self._n):
            if bit(diff, e):
                continue
            cur = flip_bit(src, e)
            path = [src, cur]
            for j in dims:
                cur = flip_bit(cur, j)
                path.append(cur)
            path.append(flip_bit(cur, e))
            paths.append(path)
        return paths

    # -- subcubes ------------------------------------------------------------

    def subcube(self, fixed_bits: dict[int, int]) -> list[int]:
        """Nodes of the subcube where bit ``j`` is pinned to ``fixed_bits[j]``.

        >>> Hypercube(3).subcube({2: 1})
        [4, 5, 6, 7]
        """
        for j, v in fixed_bits.items():
            self.check_port(j)
            if v not in (0, 1):
                raise ValueError(f"bit value must be 0 or 1, got {v!r}")
        free = [j for j in range(self._n) if j not in fixed_bits]
        fixed_value = sum(v << j for j, v in fixed_bits.items())
        out = []
        for combo in range(1 << len(free)):
            v = fixed_value
            for idx, j in enumerate(free):
                if (combo >> idx) & 1:
                    v |= 1 << j
            out.append(v)
        return sorted(out)

    def translate(self, node: int, by: int) -> int:
        """Translate ``node`` by XOR with ``by`` (graph automorphism)."""
        self.check_node(node)
        self.check_node(by)
        return node ^ by

    def edge_ports(self, src, dst):  # type: ignore[no-untyped-def]
        """Vectorized ``port_towards``: the flipped bit, ``-1`` for non-edges."""
        import numpy as np

        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        diff = src ^ dst
        ok = (
            (src >= 0)
            & (src < self.num_nodes)
            & (dst >= 0)
            & (dst < self.num_nodes)
            & (diff > 0)
            & ((diff & (diff - 1)) == 0)
        )
        safe = np.where(ok, diff, 1)
        port = np.round(np.log2(safe.astype(np.float64))).astype(np.int32)
        return np.where(ok, port, np.int32(-1))

    def cache_token(self) -> tuple[Any, ...]:
        """``("hypercube", n)`` — distinct from any torus of the same n."""
        return ("hypercube", self._n)

    def __repr__(self) -> str:
        return f"Hypercube(n={self._n}, N={self.num_nodes})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hypercube) and other._n == self._n

    def __hash__(self) -> int:
        return hash(("Hypercube", self._n))


def _masks_of_weight(n: int, w: int) -> Iterator[int]:
    """All ``n``-bit masks of popcount ``w`` (Gosper's hack order)."""
    if w == 0:
        yield 0
        return
    x = mask(w)
    limit = 1 << n
    while x < limit:
        yield x
        c = x & -x
        r = x + c
        x = (((r ^ x) >> 2) // c) | r
