"""The ``Topology`` protocol: what schedule generation needs from a graph.

Every interconnect the scheduling layers can target — the paper's Boolean
``n``-cube and the k-ary ``n``-cube tori of Jung & Sakho — exposes the same
small surface: an address space ``0 .. N-1``, per-node ports, neighbor
lookup by port, the inverse ``port_towards`` map, canonical undirected
links, a vertex-transitive ``translate`` automorphism, and a hashable
``cache_token`` identifying the instance across processes.  Spanning-tree
construction (``repro.trees``), schedule generation (``repro.routing``),
the three engines (``repro.sim``), and the caches key off this protocol
only, so new topologies plug in without touching those layers.

``edge_ports`` is the vectorized entry point the array-core lowering and
the synchronous round validator use: given parallel arrays of sources and
destinations it returns the port each pair crosses, or ``-1`` where the
pair is not a directed edge of the topology.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    import numpy as np

__all__ = ["Topology", "topology_token", "resolve_topology", "TOPOLOGY_KINDS"]


class Topology(ABC):
    """Abstract interconnect graph over addresses ``0 .. N-1``.

    Subclasses implement the abstract surface; everything else
    (iteration, containment checks, link enumeration) derives from it.
    """

    #: short machine-readable family name ("hypercube", "torus", ...)
    kind: str = "topology"

    # -- abstract surface --------------------------------------------------

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Number of dimensions ``n``."""

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Number of nodes ``N``."""

    @property
    @abstractmethod
    def num_ports(self) -> int:
        """Ports per node (out-degree of every node)."""

    @abstractmethod
    def neighbor(self, node: int, port: int) -> int:
        """The node reached from ``node`` through ``port``."""

    @abstractmethod
    def port_towards(self, src: int, dst: int) -> int:
        """The port connecting adjacent ``src`` to ``dst``; raise otherwise."""

    @abstractmethod
    def translate(self, node: int, by: int) -> int:
        """Vertex-transitive automorphism moving node 0 to ``by``."""

    @abstractmethod
    def cache_token(self) -> tuple[Any, ...]:
        """Hashable, process-stable identity for cache keys."""

    # -- derived shape -----------------------------------------------------

    @property
    def num_directed_edges(self) -> int:
        """Number of directed edges, ``N * num_ports``."""
        return self.num_nodes * self.num_ports

    @property
    def num_links(self) -> int:
        """Number of undirected links, ``N * num_ports / 2``."""
        return self.num_directed_edges // 2

    def nodes(self) -> range:
        """All node addresses ``0 .. N-1``."""
        return range(self.num_nodes)

    def contains(self, node: int) -> bool:
        """True when ``node`` is a valid address in this topology."""
        return 0 <= node < self.num_nodes

    def check_node(self, node: int) -> int:
        """Validate and return ``node``; raise ``ValueError`` otherwise."""
        if not self.contains(node):
            raise ValueError(f"node {node} outside {self!r} (N={self.num_nodes})")
        return node

    def check_port(self, port: int) -> int:
        """Validate and return a port number ``0 .. num_ports-1``."""
        if not 0 <= port < self.num_ports:
            raise ValueError(f"port {port} outside 0..{self.num_ports - 1}")
        return port

    def neighbors(self, node: int) -> list[int]:
        """All neighbours of ``node``, in port order."""
        self.check_node(node)
        return [self.neighbor(node, p) for p in range(self.num_ports)]

    def are_adjacent(self, a: int, b: int) -> bool:
        """True when a directed edge ``a -> b`` exists."""
        self.check_node(a)
        self.check_node(b)
        if a == b:
            return False
        return b in self.neighbors(a)

    def links(self) -> Iterator[tuple[int, int]]:
        """All undirected links as canonical ``(low, high)`` pairs."""
        for node in self.nodes():
            for port in range(self.num_ports):
                other = self.neighbor(node, port)
                if node < other:
                    yield (node, other)

    # -- vectorized adjacency ---------------------------------------------

    def edge_ports(self, src: "np.ndarray", dst: "np.ndarray") -> "np.ndarray":
        """Port crossed by each ``src[i] -> dst[i]`` pair, ``-1`` if not an edge.

        The default implementation is a per-pair python loop; subclasses
        override with a closed-form array computation for the hot paths
        (array-core lowering, vectorized round validation).
        """
        import numpy as np

        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        out = np.full(src.shape, -1, dtype=np.int32)
        flat_src = src.ravel()
        flat_dst = dst.ravel()
        flat_out = out.ravel()
        for i in range(flat_src.shape[0]):
            s = int(flat_src[i])
            d = int(flat_dst[i])
            if 0 <= s < self.num_nodes and 0 <= d < self.num_nodes and s != d:
                try:
                    flat_out[i] = self.port_towards(s, d)
                except ValueError:
                    pass
        return flat_out.reshape(src.shape)


def topology_token(topo: object) -> tuple[Any, ...]:
    """Cache identity for ``topo``, tolerating pre-protocol cube objects."""
    token = getattr(topo, "cache_token", None)
    if callable(token):
        return tuple(token())
    # Duck-typed fallback: anything cube-like with a dimension.
    return (type(topo).__name__.lower(), getattr(topo, "dimension", None))


def resolve_topology(kind: str, dimension: int, k: int = 3) -> Topology:
    """Construct a topology by family name (CLI / config entry point).

    Args:
        kind: ``"hypercube"`` or ``"torus"``.
        dimension: number of dimensions ``n``.
        k: ring arity for the torus (ignored for hypercubes).
    """
    from repro.topology.hypercube import Hypercube
    from repro.topology.torus import Torus

    if kind == "hypercube":
        return Hypercube(dimension)
    if kind == "torus":
        return Torus(dimension, k)
    raise ValueError(f"unknown topology kind {kind!r}; expected one of {TOPOLOGY_KINDS}")


#: topology family names accepted by :func:`resolve_topology` and the CLI
TOPOLOGY_KINDS: tuple[str, ...] = ("hypercube", "torus")
