"""Topology substrate: the Topology protocol, hypercube and torus graphs."""

from repro.topology.base import (
    TOPOLOGY_KINDS,
    Topology,
    resolve_topology,
    topology_token,
)
from repro.topology.embedding import EmbeddingMetrics, evaluate_embedding
from repro.topology.fault import (
    fault_avoiding_spanning_tree,
    max_tolerable_failures,
    surviving_path,
)
from repro.topology.graph import (
    bfs_levels,
    check_spanning_tree,
    edges_are_disjoint,
    is_cube_edge,
    tree_edges_from_parents,
)
from repro.topology.hypercube import DirectedEdge, Hypercube
from repro.topology.torus import Torus
from repro.topology.permutation_routing import (
    bit_reversal_permutation,
    ecube_path,
    link_congestion,
    route_permutation,
    transpose_permutation,
    valiant_route_permutation,
)

__all__ = [
    "DirectedEdge",
    "Hypercube",
    "Torus",
    "Topology",
    "TOPOLOGY_KINDS",
    "resolve_topology",
    "topology_token",
    "EmbeddingMetrics",
    "evaluate_embedding",
    "bfs_levels",
    "check_spanning_tree",
    "edges_are_disjoint",
    "is_cube_edge",
    "tree_edges_from_parents",
    "fault_avoiding_spanning_tree",
    "max_tolerable_failures",
    "surviving_path",
    "bit_reversal_permutation",
    "ecube_path",
    "link_congestion",
    "route_permutation",
    "transpose_permutation",
    "valiant_route_permutation",
]
