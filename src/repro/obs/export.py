"""Metric exporters: Prometheus text format and JSON snapshots.

Two serializations of a :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  histogram ``_bucket``/``_sum``/``_count`` expansion).  A minimal
  :func:`parse_prometheus` reads it back, so round-tripping is testable
  without a Prometheus server.
* :func:`snapshot` — a nested JSON-serializable dict (what the CLI's
  ``--metrics-json`` writes, and what CI uploads as the per-PR perf
  artifact).
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, IO

from repro.obs.registry import (
    REGISTRY,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "to_prometheus",
    "parse_prometheus",
    "snapshot",
    "write_metrics_json",
]


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    items = list(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry in Prometheus text exposition format."""
    registry = registry or REGISTRY
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, Histogram):
            for series in family.series():
                for upper, cum in series.cumulative_buckets():
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_str(series.labels, ('le', _fmt_value(upper)))}"
                        f" {cum}"
                    )
                lines.append(
                    f"{family.name}_sum{_label_str(series.labels)} "
                    f"{_fmt_value(series.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_label_str(series.labels)} "
                    f"{series.count}"
                )
        else:
            for series in family.series():
                lines.append(
                    f"{family.name}{_label_str(series.labels)} "
                    f"{_fmt_value(series.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition-format text back into ``(name, labels) -> value``.

    Labels are returned as a sorted tuple of ``(key, value)`` pairs, so
    lookups are order-independent.  Covers the subset
    :func:`to_prometheus` emits (which is also the subset real
    Prometheus clients produce for counters/gauges/histograms).
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labelpart, valuepart = rest.rsplit("}", 1)
            labels = tuple(sorted(_parse_labels(labelpart)))
        else:
            name, valuepart = line.split(None, 1)
            labels = ()
        value = valuepart.strip()
        out[(name, labels)] = (
            math.inf if value == "+Inf" else float(value)
        )
    return out


def _parse_labels(labelpart: str) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    i = 0
    n = len(labelpart)
    while i < n:
        eq = labelpart.index("=", i)
        key = labelpart[i:eq].strip().lstrip(",").strip()
        assert labelpart[eq + 1] == '"', "label values must be quoted"
        j = eq + 2
        buf = []
        while labelpart[j] != '"':
            if labelpart[j] == "\\":
                nxt = labelpart[j + 1]
                buf.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                j += 2
            else:
                buf.append(labelpart[j])
                j += 1
        pairs.append((key, "".join(buf)))
        i = j + 1
    return pairs


def snapshot(registry: MetricsRegistry | None = None) -> dict[str, Any]:
    """The registry as a JSON-serializable nested dict.

    Shape::

        {family: {"type": ..., "help": ..., "series": [
            {"labels": {...}, "value": v}                  # counter/gauge
            {"labels": {...}, "count": n, "sum": s,
             "buckets": {"0.005": 3, ..., "+Inf": 9}}      # histogram
        ]}}
    """
    registry = registry or REGISTRY
    out: dict[str, Any] = {}
    for family in registry.collect():
        series_out = []
        for series in family.series():
            entry: dict[str, Any] = {"labels": dict(series.labels)}
            if isinstance(family, Histogram):
                entry["count"] = series.count
                entry["sum"] = series.sum
                entry["buckets"] = {
                    _fmt_value(upper): cum
                    for upper, cum in series.cumulative_buckets()
                }
            else:
                entry["value"] = series.value
            series_out.append(entry)
        out[family.name] = {
            "type": family.kind,
            "help": family.help,
            "series": series_out,
        }
    return out


def write_metrics_json(
    target: str | os.PathLike | IO[str],
    extra: dict[str, Any] | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Write ``{"registry": snapshot(), **extra}`` to ``target`` as JSON.

    ``target`` may be a path, ``"-"`` for stdout, or a writable stream.
    Returns the document written.
    """
    doc: dict[str, Any] = dict(extra or {})
    doc["registry"] = snapshot(registry)
    if target == "-":
        import sys

        json.dump(doc, sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
    elif hasattr(target, "write"):
        json.dump(doc, target, indent=2, default=str)  # type: ignore[arg-type]
    else:
        with open(target, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, default=str)
    return doc
