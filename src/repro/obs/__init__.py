"""repro.obs — unified observability: metrics, logs, profiling.

One layer serves every subsystem:

* :mod:`~repro.obs.registry` — a zero-dependency metrics registry
  (counters, gauges, cumulative-bucket histograms, labeled series)
  whose disabled cost is a single flag check per operation;
* :mod:`~repro.obs.instruments` — the library's built-in instruments
  (engine events/transfers, runtime packets/repairs, cache ops, sweep
  timings) plus the once-per-run flush helpers the hot paths call;
* :mod:`~repro.obs.log` — a structured-logging facade emitting one
  JSON object per line with bound run/collective/node context,
  inactive until :func:`configure_logging` names a sink;
* :mod:`~repro.obs.profiling` — wall/CPU timers and an opt-in
  ``cProfile`` capture (``repro broadcast --profile``);
* :mod:`~repro.obs.export` — Prometheus text exposition and JSON
  snapshots (``--metrics-json``, the CI perf artifacts);
* :mod:`~repro.obs.runs` — the per-collective collector behind
  ``CollectiveResult.metrics``.

Environment:
    ``REPRO_OBS=0`` (or ``off``/``false``/``no``) disables metric
    recording (read at import; change later with
    ``REGISTRY.configure``).  ``always=True`` instruments — the cache
    counters backing ``repro.cache.cache_stats()`` — keep counting
    regardless.
"""

from repro.obs.export import (
    parse_prometheus,
    snapshot,
    to_prometheus,
    write_metrics_json,
)
from repro.obs.log import (
    JsonLogger,
    configure_logging,
    get_logger,
    logging_enabled,
)
from repro.obs.profiling import (
    ProfileReport,
    Timer,
    cpu_timer,
    profiled,
    wall_timer,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
)
from repro.obs.runs import RunCollector

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsRegistry",
    "ObsError",
    "ProfileReport",
    "REGISTRY",
    "RunCollector",
    "Timer",
    "configure_logging",
    "cpu_timer",
    "get_logger",
    "logging_enabled",
    "parse_prometheus",
    "profiled",
    "snapshot",
    "to_prometheus",
    "wall_timer",
    "write_metrics_json",
]
