"""The library's built-in instruments and per-subsystem flush helpers.

Every instrumented layer shares the instruments defined here (all in
the default :data:`~repro.obs.registry.REGISTRY`):

* **engines** — the event engine and the lock-step engine accumulate
  into *local* variables during a run and call
  :func:`engine_run_finished` once at the end, so the hot loops gain
  nothing but integer increments;
* **runtime** — the actor kernel flushes through
  :func:`runtime_run_finished` when a cluster run completes;
* **caches** — the LRU and disk layers update the ``always=True``
  cache counters synchronously (they double as the functional
  ``cache_stats()`` API, so they keep counting while telemetry is
  disabled);
* **sweeps** — the executor folds its per-point telemetry in through
  :func:`sweep_finished`, including the worker-process cache deltas
  that would otherwise die with the pool.

Naming follows Prometheus conventions: ``repro_`` prefix, ``_total``
suffix on counters, ``_seconds`` on timings.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import REGISTRY

__all__ = [
    "CACHE_OPS",
    "CACHE_DISK_BYTES",
    "COLLECTIVE_PHASE_SECONDS",
    "COLLECTIVE_RUNS",
    "ENGINE_ADMISSION_BLOCKS",
    "ENGINE_DEADLOCKS",
    "ENGINE_ELEMS",
    "ENGINE_EVENTS",
    "ENGINE_FAULTED_TRANSFERS",
    "ENGINE_RUN_SECONDS",
    "ENGINE_TABLE_BYTES_PEAK",
    "ENGINE_TRANSFERS",
    "RUNTIME_ELEMS",
    "RUNTIME_FAULTED_TRANSFERS",
    "RUNTIME_PACKETS",
    "RUNTIME_REPAIR_ROUNDS",
    "RUNTIME_RUN_SECONDS",
    "RUNTIME_TIMEOUTS",
    "SHARD_AGG_RATIO",
    "SHARD_CROSS_MESSAGES",
    "SHARD_FRAMES",
    "SHARD_LOOKAHEAD_STALLS",
    "SHARD_ROUNDS",
    "SHARD_RUN_SECONDS",
    "SHARD_WORKERS",
    "SERVICE_COMPLETION_TIME",
    "SERVICE_JOBS",
    "SERVICE_QUANTILES",
    "SERVICE_QUEUEING_DELAY",
    "SERVICE_RUN_SECONDS",
    "SIM_TIME_BUCKETS",
    "SWEEP_CACHE_OPS",
    "SWEEP_POINT_SECONDS",
    "SWEEP_POINTS",
    "SWEEP_RUNS",
    "SWEEP_WALL_SECONDS",
    "SWEEP_WORKER_UTILIZATION",
    "WORKLOAD_LINK_UTILIZATION",
    "WORKLOAD_PHASES",
    "WORKLOAD_RUN_SECONDS",
    "WORKLOAD_STEP_TIME",
    "WORKLOAD_STEPS",
    "WORKLOAD_STRAGGLER_RATIO",
    "engine_run_finished",
    "runtime_run_finished",
    "service_run_finished",
    "sharded_run_finished",
    "sweep_finished",
    "workload_run_finished",
]

# -- engines ----------------------------------------------------------

ENGINE_EVENTS = REGISTRY.counter(
    "repro_engine_events_total",
    "Event-loop examinations processed by the async engine.",
    ("engine",),
)
ENGINE_TRANSFERS = REGISTRY.counter(
    "repro_engine_transfers_total",
    "Transfers (packets) executed by the simulation engines.",
    ("engine", "port_model"),
)
ENGINE_ELEMS = REGISTRY.counter(
    "repro_engine_elems_total",
    "Elements moved by the simulation engines.",
    ("engine", "port_model"),
)
ENGINE_ADMISSION_BLOCKS = REGISTRY.counter(
    "repro_engine_admission_blocks_total",
    "Transfer starts deferred by port-model admission or link serialization.",
    ("engine", "port_model"),
)
ENGINE_DEADLOCKS = REGISTRY.counter(
    "repro_engine_deadlocks_total",
    "Runs terminated by a deadlock diagnosis.",
    ("engine",),
)
ENGINE_FAULTED_TRANSFERS = REGISTRY.counter(
    "repro_engine_faulted_transfers_total",
    "Transfers cancelled by dead links/nodes (report mode).",
    ("engine",),
)
ENGINE_RUN_SECONDS = REGISTRY.histogram(
    "repro_engine_run_seconds",
    "Wall-clock seconds per engine run.",
    ("engine",),
)
ENGINE_TABLE_BYTES_PEAK = REGISTRY.gauge(
    "repro_engine_table_bytes_peak",
    "Largest lowered-schedule table (bytes) seen by the vectorized engine.",
)

# -- actor runtime ----------------------------------------------------

RUNTIME_PACKETS = REGISTRY.counter(
    "repro_runtime_packets_total",
    "Packets the actor runtime moved (each is one send and one receive).",
)
RUNTIME_ELEMS = REGISTRY.counter(
    "repro_runtime_elems_total",
    "Elements the actor runtime moved.",
)
RUNTIME_TIMEOUTS = REGISTRY.counter(
    "repro_runtime_receive_timeouts_total",
    "Receive timeouts fired on starved actors (repair mode).",
)
RUNTIME_REPAIR_ROUNDS = REGISTRY.counter(
    "repro_runtime_repair_rounds_total",
    "Survivor-tree repair rounds executed.",
)
RUNTIME_FAULTED_TRANSFERS = REGISTRY.counter(
    "repro_runtime_faulted_transfers_total",
    "Runtime sends lost to dead links/nodes.",
)
RUNTIME_RUN_SECONDS = REGISTRY.histogram(
    "repro_runtime_run_seconds",
    "Wall-clock seconds per virtual-cluster run.",
)

# -- sharded runtime (cross-partition protocol) -----------------------

SHARD_WORKERS = REGISTRY.gauge(
    "repro_runtime_shard_workers",
    "Worker count of the most recent sharded runtime run.",
)
SHARD_ROUNDS = REGISTRY.counter(
    "repro_runtime_shard_clock_rounds_total",
    "Distributed-clock rounds driven by the shard coordinator.",
    ("kind",),
)
SHARD_CROSS_MESSAGES = REGISTRY.counter(
    "repro_runtime_shard_cross_messages_total",
    "Cross-partition records shipped between shards.",
)
SHARD_FRAMES = REGISTRY.counter(
    "repro_runtime_shard_frames_total",
    "Aggregated IPC frames carrying cross-partition records.",
)
SHARD_AGG_RATIO = REGISTRY.gauge(
    "repro_runtime_shard_aggregation_ratio",
    "Records per frame achieved by the TRAM-style aggregator (last run).",
)
SHARD_LOOKAHEAD_STALLS = REGISTRY.counter(
    "repro_runtime_shard_lookahead_stalls_total",
    "Rounds a shard idled because the instant belonged to other shards.",
    ("shard",),
)
SHARD_RUN_SECONDS = REGISTRY.histogram(
    "repro_runtime_shard_run_seconds",
    "Wall-clock seconds per sharded runtime run.",
)

# -- caches (always-on: these back repro.cache.cache_stats()) ---------

CACHE_OPS = REGISTRY.counter(
    "repro_cache_ops_total",
    "Cache operations per cache instance (hit/miss/eviction/store/error).",
    ("cache", "op"),
    always=True,
)
CACHE_DISK_BYTES = REGISTRY.counter(
    "repro_cache_disk_bytes_total",
    "Bytes read from / written to the on-disk cache layer.",
    ("cache", "direction"),
    always=True,
)

# -- sweep executor ---------------------------------------------------

SWEEP_RUNS = REGISTRY.counter(
    "repro_sweep_runs_total",
    "Sweeps executed.",
    ("executor",),
)
SWEEP_POINTS = REGISTRY.counter(
    "repro_sweep_points_total",
    "Sweep points executed.",
    ("executor",),
)
SWEEP_POINT_SECONDS = REGISTRY.histogram(
    "repro_sweep_point_seconds",
    "Per-point wall-clock seconds (measured inside the worker).",
)
SWEEP_WALL_SECONDS = REGISTRY.histogram(
    "repro_sweep_wall_seconds",
    "End-to-end wall-clock seconds per sweep.",
)
SWEEP_WORKER_UTILIZATION = REGISTRY.gauge(
    "repro_sweep_worker_utilization",
    "point_wall_s / (wall_s * jobs) of the most recent sweep.",
)
SWEEP_CACHE_OPS = REGISTRY.counter(
    "repro_sweep_cache_ops_total",
    "Cache ops summed over sweep workers (their registries die with the pool).",
    ("layer", "op"),
)

# -- multi-tenant service ---------------------------------------------

#: histogram buckets in *simulated* time units — queueing delays and
#: completion times scale with M/B and the machine's tau/t_c, so the
#: range spans sub-unit waits to very long saturated-cube tails
SIM_TIME_BUCKETS: tuple[float, ...] = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 5e5, 1e6,
)

SERVICE_JOBS = REGISTRY.counter(
    "repro_service_jobs_total",
    "Collective jobs handled by the multi-tenant service.",
    ("tenant", "policy", "outcome"),
)
SERVICE_QUEUEING_DELAY = REGISTRY.histogram(
    "repro_service_queueing_delay",
    "Simulated time between a job's arrival and its admission.",
    ("tenant", "policy"),
    buckets=SIM_TIME_BUCKETS,
)
SERVICE_COMPLETION_TIME = REGISTRY.histogram(
    "repro_service_completion_time",
    "Simulated time between a job's arrival and its last delivery.",
    ("tenant", "policy"),
    buckets=SIM_TIME_BUCKETS,
)
SERVICE_QUANTILES = REGISTRY.gauge(
    "repro_service_quantiles",
    "Exact per-run quantiles of the service latency distributions.",
    ("tenant", "policy", "metric", "quantile"),
)
SERVICE_RUN_SECONDS = REGISTRY.histogram(
    "repro_service_run_seconds",
    "Wall-clock seconds per service run (admission loop + engine).",
)

# -- workloads --------------------------------------------------------

WORKLOAD_STEPS = REGISTRY.counter(
    "repro_workload_steps_total",
    "Workload steps executed.",
    ("workload", "backend", "outcome"),
)
WORKLOAD_PHASES = REGISTRY.counter(
    "repro_workload_phases_total",
    "Workload phases executed, by phase kind / collective op.",
    ("workload", "kind"),
)
WORKLOAD_STEP_TIME = REGISTRY.histogram(
    "repro_workload_step_time",
    "Simulated duration per workload step.",
    ("workload",),
    buckets=SIM_TIME_BUCKETS,
)
WORKLOAD_LINK_UTILIZATION = REGISTRY.gauge(
    "repro_workload_link_utilization",
    "Per-link utilization of the most recent workload run's steps.",
    ("workload", "stat"),
)
WORKLOAD_STRAGGLER_RATIO = REGISTRY.gauge(
    "repro_workload_straggler_ratio",
    "max/median node-lag ratio of the most recent workload run (worst step).",
    ("workload",),
)
WORKLOAD_RUN_SECONDS = REGISTRY.histogram(
    "repro_workload_run_seconds",
    "Wall-clock seconds per workload run (dependency loop + engine).",
)

# -- collectives ------------------------------------------------------

COLLECTIVE_RUNS = REGISTRY.counter(
    "repro_collective_runs_total",
    "High-level collective operations executed.",
    ("op", "algorithm", "backend", "topology"),
)
COLLECTIVE_PHASE_SECONDS = REGISTRY.histogram(
    "repro_collective_phase_seconds",
    "Wall-clock seconds per collective phase (schedule/sync/async/runtime).",
    ("phase",),
)


def engine_run_finished(
    engine: str,
    port_model: Any,
    *,
    transfers: int,
    elems: int,
    seconds: float,
    events: int = 0,
    admission_blocks: int = 0,
    faulted: int = 0,
    deadlocked: bool = False,
    table_bytes: int = 0,
) -> None:
    """Flush one engine run's locally accumulated counters.

    Called once per :func:`repro.sim.engine.run_async` /
    :func:`repro.sim.synchronous.run_synchronous` invocation (including
    aborted ones), so the engines' inner loops never touch the registry.
    """
    if not REGISTRY.enabled:
        return
    pm = getattr(port_model, "value", str(port_model))
    ENGINE_TRANSFERS.labels(engine=engine, port_model=pm).inc(transfers)
    ENGINE_ELEMS.labels(engine=engine, port_model=pm).inc(elems)
    if events:
        ENGINE_EVENTS.labels(engine=engine).inc(events)
    if admission_blocks:
        ENGINE_ADMISSION_BLOCKS.labels(engine=engine, port_model=pm).inc(
            admission_blocks
        )
    if faulted:
        ENGINE_FAULTED_TRANSFERS.labels(engine=engine).inc(faulted)
    if deadlocked:
        ENGINE_DEADLOCKS.labels(engine=engine).inc()
    if table_bytes > ENGINE_TABLE_BYTES_PEAK.value:
        ENGINE_TABLE_BYTES_PEAK.set(table_bytes)
    ENGINE_RUN_SECONDS.labels(engine=engine).observe(seconds)


def runtime_run_finished(
    *,
    packets: int,
    elems: int,
    seconds: float,
    timeouts: int = 0,
    repair_rounds: int = 0,
    faulted: int = 0,
) -> None:
    """Flush one virtual-cluster run's counters (called by the kernel)."""
    if not REGISTRY.enabled:
        return
    RUNTIME_PACKETS.inc(packets)
    RUNTIME_ELEMS.inc(elems)
    if timeouts:
        RUNTIME_TIMEOUTS.inc(timeouts)
    if repair_rounds:
        RUNTIME_REPAIR_ROUNDS.inc(repair_rounds)
    if faulted:
        RUNTIME_FAULTED_TRANSFERS.inc(faulted)
    RUNTIME_RUN_SECONDS.observe(seconds)


def sharded_run_finished(
    *,
    workers: int,
    rounds: int,
    conflict_rounds: int,
    cross_records: int,
    frames: int,
    aggregation_ratio: float,
    stalls_by_shard: dict[int, int],
    seconds: float,
) -> None:
    """Flush one sharded run's protocol counters (the coordinator
    calls this after joining its workers)."""
    if not REGISTRY.enabled:
        return
    SHARD_WORKERS.set(workers)
    SHARD_ROUNDS.labels(kind="total").inc(rounds)
    if conflict_rounds:
        SHARD_ROUNDS.labels(kind="conflict").inc(conflict_rounds)
    if cross_records:
        SHARD_CROSS_MESSAGES.inc(cross_records)
    if frames:
        SHARD_FRAMES.inc(frames)
    SHARD_AGG_RATIO.set(aggregation_ratio)
    for shard, stalls in stalls_by_shard.items():
        if stalls:
            SHARD_LOOKAHEAD_STALLS.labels(shard=str(shard)).inc(stalls)
    SHARD_RUN_SECONDS.observe(seconds)


def service_run_finished(result: Any, *, seconds: float) -> None:
    """Flush one service run's telemetry (a ``ServiceResult``-like).

    Observes every completed job's queueing delay and completion time
    into the per-tenant histograms and publishes the run's *exact*
    p50/p99 (computed from the raw samples by
    ``ServiceResult.latency_summary``) as quantile gauges — the bucket
    histograms give the shape, the gauges give the numbers CI asserts
    on.
    """
    if not REGISTRY.enabled:
        return
    policy = result.policy
    for job in result.jobs:
        outcome = (
            "rejected" if not job.accepted
            else "degraded" if job.degraded
            else "completed"
        )
        SERVICE_JOBS.labels(
            tenant=job.tenant, policy=policy, outcome=outcome
        ).inc()
        if not job.accepted:
            continue
        SERVICE_QUEUEING_DELAY.labels(
            tenant=job.tenant, policy=policy
        ).observe(job.queueing_delay)
        SERVICE_COMPLETION_TIME.labels(
            tenant=job.tenant, policy=policy
        ).observe(job.completion_time)
    for tenant, summary in result.latency_summary().items():
        for metric in ("completion_time", "queueing_delay"):
            for quantile in ("p50", "p99"):
                SERVICE_QUANTILES.labels(
                    tenant=tenant, policy=policy,
                    metric=metric, quantile=quantile,
                ).set(summary[metric][quantile])
    SERVICE_RUN_SECONDS.observe(seconds)


def workload_run_finished(report: Any, *, seconds: float) -> None:
    """Flush one workload run's telemetry (a ``WorkloadReport``-like).

    Wall-clock time lives *only* here — the report object itself is
    pure simulated time so the determinism suite can fingerprint it.
    """
    if not REGISTRY.enabled:
        return
    import math

    name = report.workload
    util_max = 0.0
    util_mean_worst = 0.0
    ratio_worst = float("nan")
    for step in report.steps:
        outcome = "degraded" if step.degraded else "completed"
        WORKLOAD_STEPS.labels(
            workload=name, backend=report.backend, outcome=outcome
        ).inc()
        WORKLOAD_STEP_TIME.labels(workload=name).observe(step.duration)
        for phase in step.phases:
            kind = phase.op if phase.op is not None else "compute"
            WORKLOAD_PHASES.labels(workload=name, kind=kind).inc()
        util_max = max(util_max, step.link_utilization.max)
        util_mean_worst = max(util_mean_worst, step.link_utilization.mean)
        r = step.stragglers.ratio
        if not math.isnan(r) and (math.isnan(ratio_worst) or r > ratio_worst):
            ratio_worst = r
    WORKLOAD_LINK_UTILIZATION.labels(workload=name, stat="max").set(util_max)
    WORKLOAD_LINK_UTILIZATION.labels(workload=name, stat="mean").set(
        util_mean_worst
    )
    if not math.isnan(ratio_worst):
        WORKLOAD_STRAGGLER_RATIO.labels(workload=name).set(ratio_worst)
    WORKLOAD_RUN_SECONDS.observe(seconds)


def sweep_finished(stats: Any) -> None:
    """Flush one sweep execution's telemetry (a ``SweepStats``-like).

    The per-point cache deltas were measured inside the worker
    processes; folding them into ``SWEEP_CACHE_OPS`` here is what keeps
    them visible after the pool exits.
    """
    if not REGISTRY.enabled:
        return
    SWEEP_RUNS.labels(executor=stats.executor).inc()
    SWEEP_POINTS.labels(executor=stats.executor).inc(stats.num_points)
    for point in stats.points:
        SWEEP_POINT_SECONDS.observe(point.wall_s)
    SWEEP_WALL_SECONDS.observe(stats.wall_s)
    if stats.wall_s > 0 and stats.jobs > 0:
        SWEEP_WORKER_UTILIZATION.set(
            min(1.0, stats.point_wall_s / (stats.wall_s * stats.jobs))
        )
    for layer, hits, misses in (
        ("lru", stats.lru_hits, stats.lru_misses),
        ("disk", stats.disk_hits, stats.disk_misses),
    ):
        if hits:
            SWEEP_CACHE_OPS.labels(layer=layer, op="hit").inc(hits)
        if misses:
            SWEEP_CACHE_OPS.labels(layer=layer, op="miss").inc(misses)
