"""Profiling hooks: wall/CPU timers and optional cProfile capture.

Two granularities:

* :func:`wall_timer` / :func:`cpu_timer` — cheap context managers for
  phase-level timing; the run collector (:mod:`repro.obs.runs`) uses
  them for its per-phase breakdown.
* :func:`profiled` — a full ``cProfile`` capture around a block (one
  collective, one sweep target) yielding a :class:`ProfileReport` whose
  text/top-function views the CLI's ``--profile`` flag writes out.

The cProfile capture is opt-in per call site: nothing in the library
profiles unless asked, so the hooks cost nothing when unused.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Timer", "ProfileReport", "wall_timer", "cpu_timer", "profiled"]


class Timer:
    """Elapsed-time holder filled in by the timer context managers."""

    __slots__ = ("_clock", "_t0", "elapsed")

    def __init__(self, clock):
        self._clock = clock
        self._t0 = clock()
        #: seconds measured between entering and leaving the block
        self.elapsed: float = 0.0

    def stop(self) -> float:
        """Freeze and return the elapsed time."""
        self.elapsed = self._clock() - self._t0
        return self.elapsed


@contextmanager
def wall_timer() -> Iterator[Timer]:
    """Time a block in wall-clock seconds (``perf_counter``)."""
    timer = Timer(time.perf_counter)
    try:
        yield timer
    finally:
        timer.stop()


@contextmanager
def cpu_timer() -> Iterator[Timer]:
    """Time a block in process CPU seconds (``process_time``)."""
    timer = Timer(time.process_time)
    try:
        yield timer
    finally:
        timer.stop()


class ProfileReport:
    """Holds a finished ``cProfile`` run and renders it on demand."""

    def __init__(self) -> None:
        self._profile: cProfile.Profile | None = None

    def _stats(self, sort: str) -> pstats.Stats:
        if self._profile is None:
            raise RuntimeError("the profiled block has not finished yet")
        return pstats.Stats(self._profile).sort_stats(sort)

    def text(self, limit: int = 30, sort: str = "cumulative") -> str:
        """The pstats table as text, top ``limit`` entries."""
        buf = io.StringIO()
        stats = self._stats(sort)
        stats.stream = buf  # type: ignore[attr-defined]
        stats.print_stats(limit)
        return buf.getvalue()

    def top_functions(self, limit: int = 10) -> list[tuple[str, float]]:
        """``(function, cumulative seconds)`` pairs, heaviest first."""
        stats = self._stats("cumulative")
        rows = []
        for func, (_cc, _nc, _tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
            filename, line, name = func
            rows.append((f"{filename}:{line}({name})", ct))
        rows.sort(key=lambda r: -r[1])
        return rows[:limit]


@contextmanager
def profiled() -> Iterator[ProfileReport]:
    """Capture a ``cProfile`` of the block; yields a report.

    The report is usable after the block exits::

        with profiled() as prof:
            broadcast(cube, 0, "msbt", 4096, 256)
        print(prof.text(20))
    """
    report = ProfileReport()
    profile = cProfile.Profile()
    try:
        profile.enable()
    except ValueError:  # another profiler is active (e.g. coverage)
        yield report
        report._profile = cProfile.Profile()  # empty but renderable
        return
    try:
        yield report
    finally:
        profile.disable()
        report._profile = profile
