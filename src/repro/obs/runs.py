"""Per-run metric collection for the collective API.

A :class:`RunCollector` wraps one collective operation: the API layer
creates it, times each phase through :meth:`RunCollector.phase`, and
calls :meth:`RunCollector.finalize` on the finished
:class:`~repro.collectives.result.CollectiveResult`.  Finalize

* diffs the registry's counters against a snapshot taken at
  construction, yielding the *deltas this run caused* (engine events,
  runtime packets, cache hits/misses, ...) even though the underlying
  counters are process-cumulative;
* derives the canonical traffic numbers — ``packets_sent``,
  ``elems_sent``, ``links_used`` — from the executed result's
  :class:`~repro.sim.trace.LinkStats`, so the ``sim`` and ``runtime``
  backends report identical values for the same operation (the
  differential test in ``tests/obs`` pins this);
* attaches everything as ``result.metrics`` and bumps the
  ``repro_collective_runs_total`` counter.

With the registry disabled the collector is inert: ``phase`` is a
plain passthrough and ``finalize`` leaves ``result.metrics`` empty.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.instruments import COLLECTIVE_PHASE_SECONDS, COLLECTIVE_RUNS
from repro.obs.log import get_logger
from repro.obs.registry import REGISTRY, MetricsRegistry

__all__ = ["RunCollector"]


class RunCollector:
    """Collects one collective run's phase timings and counter deltas."""

    def __init__(
        self,
        op: str,
        algorithm: str,
        backend: str = "sim",
        registry: MetricsRegistry | None = None,
        topology: str = "hypercube",
    ):
        self.op = op
        self.algorithm = algorithm
        self.backend = backend
        self.topology = topology
        self._registry = registry or REGISTRY
        self._active = self._registry.enabled
        self._phases: dict[str, float] = {}
        self._t0 = time.perf_counter()
        self._before = (
            self._registry.counter_values() if self._active else {}
        )
        self._log = get_logger(
            op=op, algorithm=algorithm, backend=backend, topology=topology
        )

    @property
    def active(self) -> bool:
        """False when the registry was disabled at construction."""
        return self._active

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase (schedule / sync / async / runtime)."""
        if not self._active:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self._phases[name] = self._phases.get(name, 0.0) + elapsed
            COLLECTIVE_PHASE_SECONDS.labels(phase=name).observe(elapsed)

    def counter_deltas(self) -> dict[str, float]:
        """Registry counter increments since construction.

        Keys are rendered ``family{label="value",...}`` (no labels →
        bare family name); only series that moved are included.
        """
        out: dict[str, float] = {}
        if not self._active:
            return out
        after = self._registry.counter_values()
        for key, value in after.items():
            delta = value - self._before.get(key, 0)
            if delta:
                name, labelvalues = key
                family = self._registry.get(name)
                labelnames = family.labelnames if family else ()
                if labelvalues:
                    inner = ",".join(
                        f'{k}="{v}"' for k, v in zip(labelnames, labelvalues)
                    )
                    out[f"{name}{{{inner}}}"] = delta
                else:
                    out[name] = delta
        return out

    def finalize(self, result: Any) -> dict[str, Any]:
        """Attach the collected metrics to ``result`` and return them."""
        if not self._active:
            return {}
        executed = result.async_ if result.async_ is not None else result.sync
        link_stats = getattr(executed, "link_stats", None)
        if link_stats is None:
            link_stats = result.sync.link_stats
        metrics: dict[str, Any] = {
            "op": self.op,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "topology": self.topology,
            "wall_s": time.perf_counter() - self._t0,
            "phases": dict(self._phases),
            "packets_sent": sum(link_stats.packets.values()),
            "elems_sent": link_stats.total_elems(),
            "links_used": len(link_stats.packets),
            "cycles": result.cycles,
            "time": result.time,
            "degraded": result.degraded,
            "undelivered_nodes": len(result.undelivered_nodes),
            "counters": self.counter_deltas(),
        }
        COLLECTIVE_RUNS.labels(
            op=self.op,
            algorithm=self.algorithm,
            backend=self.backend,
            topology=self.topology,
        ).inc()
        result.metrics = metrics
        self._log.info(
            "collective.finished",
            wall_s=round(metrics["wall_s"], 6),
            packets_sent=metrics["packets_sent"],
            elems_sent=metrics["elems_sent"],
            cycles=metrics["cycles"],
            degraded=metrics["degraded"],
        )
        return metrics
