"""Zero-dependency metrics registry: counters, gauges, histograms.

One process owns one :data:`REGISTRY` (module-level default, same
per-process semantics as the cache registry it now backs): instruments
are *families* registered under a unique name, and a family fans out
into labeled *series* — ``counter.labels(cache="trees", op="hit")`` —
each holding one value.  The registry is deliberately tiny and
dependency-free so the simulation engines, the actor runtime, the
cache layer, and the sweep executor can all report through it without
pulling anything into their hot paths.

Cost model (the layer's contract):

* A **disabled** registry costs one dict lookup: ``family.labels(...)``
  resolves (and caches) the series, and the series mutator returns
  after a single flag check.  Nothing allocates per call once a series
  exists.
* An **enabled** counter increment is a flag check plus an integer
  add.  The heavy subsystems go further and accumulate into local
  variables, flushing one registry update per *run* (see
  :mod:`repro.obs.instruments`), so enabling metrics keeps full runs
  within noise of the benchmark baselines.

Instruments created with ``always=True`` keep counting while the
registry is disabled.  The cache layer uses this: its hit/miss counters
double as functional API (``repro.cache.cache_stats()``), so they must
not stop when telemetry is switched off.

Enablement follows the ``REPRO_OBS`` environment variable (``0`` /
``off`` / ``false`` / ``no`` disable; default enabled), snapshotted at
import; :func:`MetricsRegistry.configure` changes it afterwards.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsError",
    "DEFAULT_BUCKETS",
]

#: default histogram buckets — timing-oriented (seconds), spanning
#: microsecond schedule lookups to multi-second full-figure sweeps
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class ObsError(ValueError):
    """An instrument was registered or used inconsistently."""


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_OBS", "1").strip().lower()
    return value not in ("0", "off", "false", "no")


class _Series:
    """One labeled time series of a family (the value holder)."""

    __slots__ = ("_registry", "_always", "labels")

    def __init__(
        self,
        registry: "MetricsRegistry",
        labels: Mapping[str, str],
        always: bool,
    ):
        self._registry = registry
        self._always = always
        #: the label key/value mapping identifying this series
        self.labels = dict(labels)

    def _active(self) -> bool:
        return self._registry._enabled or self._always


class CounterSeries(_Series):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, registry, labels, always):
        super().__init__(registry, labels, always)
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (>= 0) to the series."""
        if amount < 0:
            raise ObsError(f"counters only go up, got inc({amount})")
        if self._registry._enabled or self._always:
            self.value += amount

    def reset(self) -> None:
        """Zero the series (tests, per-cache reinitialization)."""
        self.value = 0


class GaugeSeries(_Series):
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self, registry, labels, always):
        super().__init__(registry, labels, always)
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        """Set the series to ``value``."""
        if self._registry._enabled or self._always:
            self.value = value

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (may be negative)."""
        if self._registry._enabled or self._always:
            self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    def reset(self) -> None:
        """Zero the series."""
        self.value = 0


class HistogramSeries(_Series):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("_uppers", "bucket_counts", "sum", "count")

    def __init__(self, registry, labels, always, uppers: Sequence[float]):
        super().__init__(registry, labels, always)
        self._uppers = uppers
        self.bucket_counts = [0] * (len(uppers) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not (self._registry._enabled or self._always):
            return
        self.bucket_counts[bisect_left(self._uppers, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out = []
        running = 0
        for upper, n in zip(self._uppers, self.bucket_counts):
            running += n
            out.append((upper, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def reset(self) -> None:
        """Zero counts and sum."""
        self.bucket_counts = [0] * (len(self._uppers) + 1)
        self.sum = 0.0
        self.count = 0


class _Family:
    """A named instrument fanning out into labeled series."""

    kind = "untyped"
    _series_cls: type = _Series

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        always: bool,
    ):
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.always = always
        self._series: dict[tuple[str, ...], Any] = {}

    def _make_series(self, labels: Mapping[str, str]) -> Any:
        return self._series_cls(self._registry, labels, self.always)

    def labels(self, **labelvalues: object) -> Any:
        """The series for these label values (created on first use)."""
        if tuple(sorted(labelvalues)) != tuple(sorted(self.labelnames)):
            raise ObsError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._make_series(
                dict(zip(self.labelnames, key))
            )
        return series

    def _unlabeled(self) -> Any:
        if self.labelnames:
            raise ObsError(
                f"{self.name} is labeled {self.labelnames}; use .labels(...)"
            )
        return self.labels()

    def series(self) -> Iterator[Any]:
        """All live series of this family, in creation order."""
        return iter(self._series.values())

    def reset(self) -> None:
        """Zero every series of the family."""
        for series in self._series.values():
            series.reset()


class Counter(_Family):
    """A family of monotonically increasing counts."""

    kind = "counter"
    _series_cls = CounterSeries

    def inc(self, amount: int | float = 1) -> None:
        """Increment the unlabeled series (label-less families only)."""
        self._unlabeled().inc(amount)

    @property
    def value(self) -> int | float:
        """Sum over all series of the family."""
        return sum(s.value for s in self._series.values())


class Gauge(_Family):
    """A family of set-able values."""

    kind = "gauge"
    _series_cls = GaugeSeries

    def set(self, value: int | float) -> None:
        """Set the unlabeled series (label-less families only)."""
        self._unlabeled().set(value)

    def inc(self, amount: int | float = 1) -> None:
        """Increment the unlabeled series."""
        self._unlabeled().inc(amount)

    def dec(self, amount: int | float = 1) -> None:
        """Decrement the unlabeled series."""
        self._unlabeled().dec(amount)

    @property
    def value(self) -> int | float:
        """Sum over all series of the family."""
        return sum(s.value for s in self._series.values())


class Histogram(_Family):
    """A family of cumulative-bucket histograms."""

    kind = "histogram"
    _series_cls = HistogramSeries

    def __init__(self, registry, name, help, labelnames, always, buckets):
        uppers = tuple(sorted(buckets))
        if not uppers:
            raise ObsError(f"{name}: a histogram needs at least one bucket")
        self.buckets = uppers
        super().__init__(registry, name, help, labelnames, always)

    def _make_series(self, labels: Mapping[str, str]) -> HistogramSeries:
        return HistogramSeries(self._registry, labels, self.always, self.buckets)

    def observe(self, value: float) -> None:
        """Observe into the unlabeled series (label-less families only)."""
        self._unlabeled().observe(value)


class MetricsRegistry:
    """A process-local collection of metric families.

    Args:
        enabled: initial state; ``None`` (default) follows the
            ``REPRO_OBS`` environment variable.
    """

    def __init__(self, enabled: bool | None = None):
        self._enabled = _env_enabled() if enabled is None else bool(enabled)
        self._families: dict[str, _Family] = {}

    # -- instrument factories -----------------------------------------

    def _register(self, cls: type, name: str, help: str, labelnames, always,
                  **kwargs) -> Any:
        labelnames = tuple(labelnames)
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != labelnames:
                raise ObsError(
                    f"{name} already registered as {existing.kind} with "
                    f"labels {existing.labelnames}"
                )
            return existing
        if cls is Histogram:
            buckets = kwargs.get("buckets")
            if buckets is None:
                buckets = DEFAULT_BUCKETS
            family = Histogram(self, name, help, labelnames, always, buckets)
        else:
            family = cls(self, name, help, labelnames, always)
        self._families[name] = family
        return family

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        always: bool = False,
    ) -> Counter:
        """Register (or fetch) a counter family named ``name``."""
        return self._register(Counter, name, help, labelnames, always)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        always: bool = False,
    ) -> Gauge:
        """Register (or fetch) a gauge family named ``name``."""
        return self._register(Gauge, name, help, labelnames, always)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] | None = None,
        always: bool = False,
    ) -> Histogram:
        """Register (or fetch) a histogram family named ``name``."""
        return self._register(
            Histogram, name, help, labelnames, always, buckets=buckets
        )

    # -- state ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when non-``always`` instruments are recording."""
        return self._enabled

    def configure(self, enabled: bool | None = None, *, from_env: bool = False) -> bool:
        """Enable/disable recording (mirrors ``repro.cache.configure``)."""
        if from_env:
            if enabled is not None:
                raise ValueError(
                    "pass either enabled=... or from_env=True, not both"
                )
            self._enabled = _env_enabled()
        else:
            if enabled is None:
                raise ValueError(
                    "configure() needs enabled=... or from_env=True"
                )
            self._enabled = bool(enabled)
        return self._enabled

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Suspend non-``always`` recording inside a ``with`` block."""
        prev = self._enabled
        self._enabled = False
        try:
            yield
        finally:
            self._enabled = prev

    # -- introspection -------------------------------------------------

    def collect(self) -> list[_Family]:
        """Every registered family, sorted by name."""
        return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> _Family | None:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def reset(self) -> None:
        """Zero every series of every family (counters included)."""
        for family in self._families.values():
            family.reset()

    def counter_values(self) -> dict[tuple[str, tuple[str, ...]], int | float]:
        """``(family name, label values) -> value`` for every counter
        series; the cheap snapshot the per-run delta collector diffs."""
        out: dict[tuple[str, tuple[str, ...]], int | float] = {}
        for family in self._families.values():
            if isinstance(family, Counter):
                for key, series in family._series.items():
                    out[(family.name, key)] = series.value
        return out


#: the process-wide default registry every built-in instrument lives in
REGISTRY = MetricsRegistry()
