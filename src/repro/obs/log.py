"""Structured-logging facade: JSON lines with bound context.

The library logs *events*, not strings: every record is one JSON object
per line carrying a timestamp, a level, an event name, and whatever
context was bound when the logger was created (run id, collective,
node, ...).  There is no sink by default — :func:`get_logger` hands out
loggers whose emit path is a single ``None`` check until
:func:`configure_logging` points the facade at a file, a stream, or
``"-"`` (stdout).  That keeps logging free for library users who never
opt in, while ``repro ... --log-json PATH`` turns the same call sites
into a machine-readable run journal.

Context composes: ``get_logger(run="r1").bind(node=3)`` yields a logger
whose records carry both fields.  Sinks are resolved at emit time, so
loggers created before :func:`configure_logging` start emitting the
moment a sink exists.
"""

from __future__ import annotations

import io
import json
import sys
import time
from typing import Any, IO

__all__ = [
    "JsonLogger",
    "configure_logging",
    "get_logger",
    "logging_enabled",
]

#: the active sink (file object) or None; module-global so that loggers
#: bound before configuration pick the sink up at emit time
_SINK: IO[str] | None = None
#: True when configure_logging opened the file itself (so it may close it)
_OWNS_SINK = False


def configure_logging(target: str | IO[str] | None) -> None:
    """Point the facade at ``target``; ``None`` disables logging.

    ``target`` may be a path (opened for append), ``"-"`` for stdout,
    or any writable text stream.  A previously opened file sink is
    closed when replaced.
    """
    global _SINK, _OWNS_SINK
    if _OWNS_SINK and _SINK is not None:
        try:
            _SINK.close()
        except OSError:  # pragma: no cover - close failure is harmless
            pass
    _OWNS_SINK = False
    if target is None:
        _SINK = None
    elif target == "-":
        _SINK = sys.stdout
    elif isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
        _SINK = open(target, "a", encoding="utf-8")
        _OWNS_SINK = True
    elif isinstance(target, io.TextIOBase) or hasattr(target, "write"):
        _SINK = target
    else:
        raise TypeError(f"cannot log to {target!r}")


def logging_enabled() -> bool:
    """True when a sink is configured."""
    return _SINK is not None


class JsonLogger:
    """A logger with bound context emitting one JSON object per line."""

    __slots__ = ("_context",)

    def __init__(self, context: dict[str, Any] | None = None):
        self._context = context or {}

    def bind(self, **context: Any) -> "JsonLogger":
        """A child logger carrying these extra fields on every record."""
        merged = dict(self._context)
        merged.update(context)
        return JsonLogger(merged)

    @property
    def context(self) -> dict[str, Any]:
        """The fields bound to this logger (copy)."""
        return dict(self._context)

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one record; a no-op while no sink is configured."""
        sink = _SINK
        if sink is None:
            return
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
        }
        record.update(self._context)
        record.update(fields)
        try:
            sink.write(json.dumps(record, default=_json_default) + "\n")
            sink.flush()
        except (OSError, ValueError):  # pragma: no cover - dead sink
            pass

    def debug(self, event: str, **fields: Any) -> None:
        """Emit at level ``debug``."""
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        """Emit at level ``info``."""
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        """Emit at level ``warning``."""
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        """Emit at level ``error``."""
        self.log("error", event, **fields)


def _json_default(value: Any) -> Any:
    """Fallback serializer: sets become sorted lists, the rest repr."""
    if isinstance(value, (set, frozenset)):
        try:
            return sorted(value)
        except TypeError:
            return sorted(value, key=repr)
    return repr(value)


def get_logger(**context: Any) -> JsonLogger:
    """A logger carrying ``context`` on every record."""
    return JsonLogger(dict(context))
