"""Job specifications and per-job results for the collective service.

A :class:`JobSpec` is what a tenant submits: which collective, from
which root, how big, with what priority, arriving when.  A
:class:`JobResult` is what the service hands back after the shared-cube
run: the job's own slice of the merged execution — admission instant,
first start, last delivery, link traffic, holdings — carved out of one
engine run via the transfer-provenance log
(:class:`repro.sim.faults.TransferLog` +
:attr:`repro.sim.multi.MergedProgram.owners`).

Latency vocabulary (all in simulated time):

* ``queueing_delay`` = admission − arrival (time spent waiting on
  admission control);
* ``service_time`` = finish − admission (time on the cube, including
  contention with other tenants);
* ``completion_time`` = finish − arrival (what the tenant experiences).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectives.api import SCHEDULE_OPS
from repro.sim.schedule import Chunk
from repro.sim.trace import LinkStats

__all__ = ["JobSpec", "JobResult"]


@dataclass(frozen=True)
class JobSpec:
    """One tenant's collective job request.

    Attributes:
        tenant: tenant identity (accounting + fair-share bucket).
        op: collective kind — one of
            :data:`repro.collectives.api.SCHEDULE_OPS`.
        algorithm: algorithm within the op (default per op, see
            :data:`repro.collectives.api.DEFAULT_ALGORITHMS`).
        source: root node (rooted ops; ignored otherwise).
        message_elems: message size ``M`` (per destination for the
            personalized ops).
        packet_elems: maximum packet size ``B`` (default ``M``).
        priority: strict-priority rank (larger = more urgent; only the
            ``"priority"`` policy reads it).
        arrival: simulated instant the job enters the system.
        subtree_order: BST in-subtree transmission order (§5.2).
    """

    tenant: str
    op: str = "broadcast"
    algorithm: str | None = None
    source: int = 0
    message_elems: int = 1
    packet_elems: int | None = None
    priority: int = 0
    arrival: float = 0.0
    subtree_order: str = "depth_first"

    def __post_init__(self) -> None:
        if self.op not in SCHEDULE_OPS:
            raise ValueError(
                f"op must be one of {SCHEDULE_OPS}, got {self.op!r}"
            )
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.message_elems < 1:
            raise ValueError(
                f"message_elems must be >= 1, got {self.message_elems}"
            )


@dataclass
class JobResult:
    """One job's slice of a shared-cube service run.

    Attributes:
        job_id: service-assigned id (submission order).
        spec: the submitted :class:`JobSpec`.
        accepted: False when admission control rejected the job
            outright (queue cap); every timing field is then ``nan``.
        reject_reason: why a rejected job was rejected.
        admit_time: instant the scheduler released the job onto the
            cube.
        start_time: first transfer start (>= ``admit_time``).
        finish_time: last delivery of the job's executed transfers.
        transfers: transfers executed for this job.
        elems: elements moved for this job.
        link_time: total busy link-time consumed (sum of per-transfer
            durations) — the fair-share policy's currency.
        link_stats: this job's own per-edge traffic.
        holdings: this job's final chunk placement, untagged (node ->
            chunks of *this* job only).
        undelivered: node -> chunks the op should have delivered there
            but did not (non-empty only under faults).
        degraded: True when the job lost transfers or deliveries to a
            fault.
    """

    job_id: int
    spec: JobSpec
    accepted: bool = True
    reject_reason: str | None = None
    admit_time: float = float("nan")
    start_time: float = float("nan")
    finish_time: float = float("nan")
    transfers: int = 0
    elems: int = 0
    link_time: float = 0.0
    link_stats: LinkStats = field(default_factory=LinkStats)
    holdings: dict[int, set[Chunk]] = field(default_factory=dict)
    undelivered: dict[int, set[Chunk]] = field(default_factory=dict)
    degraded: bool = False

    @property
    def tenant(self) -> str:
        """The submitting tenant (shorthand for ``spec.tenant``)."""
        return self.spec.tenant

    @property
    def queueing_delay(self) -> float:
        """Simulated time spent waiting for admission."""
        return self.admit_time - self.spec.arrival

    @property
    def service_time(self) -> float:
        """Simulated time between admission and last delivery."""
        return self.finish_time - self.admit_time

    @property
    def completion_time(self) -> float:
        """Simulated time between arrival and last delivery."""
        return self.finish_time - self.spec.arrival

    @property
    def complete(self) -> bool:
        """True when every scheduled delivery of the job happened."""
        return self.accepted and not self.undelivered

    def __repr__(self) -> str:
        if not self.accepted:
            return (
                f"JobResult(#{self.job_id} {self.tenant}/{self.spec.op} "
                f"rejected: {self.reject_reason})"
            )
        return (
            f"JobResult(#{self.job_id} {self.tenant}/{self.spec.op} "
            f"arrival={self.spec.arrival:.6g} admit={self.admit_time:.6g} "
            f"finish={self.finish_time:.6g}"
            f"{' DEGRADED' if self.degraded else ''})"
        )
