"""repro.service — multi-tenant collective jobs on one shared cube.

Everything below :mod:`repro.collectives` runs one collective at a
time on an idle network.  This package is the service shape on top: a
long-lived scheduler (:class:`CollectiveService`) admits a *stream* of
jobs — tenant, collective kind, root, M/B, priority, arrival time —
onto one shared hypercube and executes them **concurrently** on the
vectorized event engine.  Shared-link contention is enforced by the
same one-port/all-port admission rules as every standalone run; what
the service adds is *arbitration*:

* pluggable scheduling policies (:mod:`repro.service.policies`) —
  FIFO, strict priority, fair-share over consumed link-time — realized
  as program order in the merged schedule (program order is contention
  priority in the event engines);
* admission control (:class:`AdmissionControl`) — max in-flight per
  tenant / in total, wait-queue caps with outright rejection;
* per-job provenance (:mod:`repro.service.exec`) — one engine run is
  split back into per-job completion times, link traffic and delivery
  reports, bit-identical to standalone runs when jobs do not overlap;
* per-tenant telemetry — queueing-delay and completion-time
  histograms plus exact p50/p99 gauges through :mod:`repro.obs`.

See ``docs/SERVICE.md`` for the scenario format and CLI
(``repro service run --scenario ... --policy ...``).
"""

from repro.service.exec import ExecutionView, JobSlice, execute_program
from repro.service.jobs import JobResult, JobSpec
from repro.service.policies import POLICIES, SchedulingPolicy, resolve_policy
from repro.service.scheduler import (
    AdmissionControl,
    CollectiveService,
    ServiceResult,
    run_service,
)

__all__ = [
    "AdmissionControl",
    "CollectiveService",
    "ExecutionView",
    "JobResult",
    "JobSlice",
    "JobSpec",
    "POLICIES",
    "SchedulingPolicy",
    "ServiceResult",
    "execute_program",
    "resolve_policy",
    "run_service",
]
