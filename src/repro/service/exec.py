"""Merged-program execution and per-job provenance accounting.

One service step = one engine run: the scheduler merges every admitted
job into a single :class:`~repro.sim.multi.MergedProgram`, this module
executes it on the vectorized event engine (release times baked into
the lowering, transfer log enabled), and splits the run back into
per-job views using the provenance chain

    ``transfer_log.ids`` (executed, execution order)
    -> ``MergedProgram.owners`` (transfer -> job position)
    -> per-job starts / ends / link traffic.

Transfer end times are reconstructed as ``start +
machine.send_cost(elems)`` — the exact float expression the engine
itself evaluates, so per-job finish times are bit-identical to what a
standalone run of the same schedule would report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import AsyncResult
from repro.sim.faults import DegradedResult, FaultPlan
from repro.sim.lowering import lower_schedule
from repro.sim.machine import MachineParams
from repro.sim.multi import MergedProgram, untag_holdings
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk
from repro.sim.trace import LinkStats
from repro.sim.vectorized import run_async_vectorized
from repro.topology.hypercube import DirectedEdge, Hypercube

__all__ = ["JobSlice", "ExecutionView", "execute_program"]


@dataclass
class JobSlice:
    """One job's share of a merged engine run.

    Attributes:
        position: the job's entry position in the merged program.
        scheduled: transfers the job's schedule contains.
        executed: transfers that actually ran (< ``scheduled`` only
            under faults).
        elems: elements moved.
        link_time: total busy link-time (sum of transfer durations).
        first_start: earliest transfer start (``nan`` if none ran).
        finish: latest transfer end (``nan`` if none ran).
        start_times: executed start times, sorted ascending — the
            same rendering a standalone run's ``start_times`` uses.
        link_stats: per-edge packet/element counters for this job.
        link_busy: per-edge busy time for this job (duration sums).
    """

    position: int
    scheduled: int
    executed: int
    elems: int
    link_time: float
    first_start: float
    finish: float
    start_times: list[float]
    link_stats: LinkStats
    link_busy: dict[DirectedEdge, float]


@dataclass
class ExecutionView:
    """A merged run plus its per-job decomposition.

    Attributes:
        program: the merged program that was executed.
        raw: the engine result (degraded under reported faults).
        slices: per-job accounting, indexed like ``program.entries``.
    """

    program: MergedProgram
    raw: "AsyncResult | DegradedResult"
    slices: list[JobSlice]

    @property
    def makespan(self) -> float:
        """Completion time of the whole merged run."""
        return self.raw.time

    def job_holdings(self, position: int) -> dict[int, set[Chunk]]:
        """Final holdings of the job at ``position``, untagged."""
        return untag_holdings(
            self.raw.holdings, self.program.entries[position].tag
        )

    def link_busy_total(self) -> dict[DirectedEdge, float]:
        """Total busy time per directed link, over all jobs."""
        total: dict[DirectedEdge, float] = {}
        for s in self.slices:
            for edge, busy in s.link_busy.items():
                total[edge] = total.get(edge, 0.0) + busy
        return total


def execute_program(
    cube: Hypercube,
    program: MergedProgram,
    port_model: PortModel,
    machine: MachineParams | None = None,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
) -> ExecutionView:
    """Run ``program`` on the vectorized engine and split the result.

    Release times gate each job to its admission instant; the transfer
    log is always requested (it is the provenance source).
    """
    machine = machine or MachineParams()
    low = lower_schedule(
        cube, program.schedule, program.initial, program.release_times
    )
    raw = run_async_vectorized(
        cube, program.schedule, port_model, program.initial,
        machine, faults=faults, on_fault=on_fault, lowered=low,
        transfer_log=True,
    )
    log = raw.transfer_log
    assert log is not None

    owners_all = np.asarray(program.owners, dtype=np.int64)
    scheduled_per = np.bincount(owners_all, minlength=program.num_jobs)

    ids = np.asarray(log.ids, dtype=np.int64)
    starts = np.asarray(log.starts, dtype=np.float64)
    # exact engine cost expression, computed once per distinct size
    uniq_sizes, size_inv = np.unique(low.elems, return_inverse=True)
    uniq_costs = np.asarray(
        [machine.send_cost(int(s)) for s in uniq_sizes.tolist()]
    )
    costs_all = uniq_costs[size_inv]

    lsrc = low.link_src.tolist()
    ldst = low.link_dst.tolist()

    slices: list[JobSlice] = []
    if ids.size:
        owners_exec = owners_all[ids]
        ends = starts + costs_all[ids]
        links_exec = low.link[ids]
        elems_exec = low.elems[ids]
        costs_exec = costs_all[ids]
    for pos in range(program.num_jobs):
        if ids.size:
            mask = owners_exec == pos
            n_exec = int(mask.sum())
        else:
            n_exec = 0
        if n_exec == 0:
            slices.append(JobSlice(
                position=pos,
                scheduled=int(scheduled_per[pos]),
                executed=0,
                elems=0,
                link_time=0.0,
                first_start=float("nan"),
                finish=float("nan"),
                start_times=[],
                link_stats=LinkStats(),
                link_busy={},
            ))
            continue
        job_starts = starts[mask]
        job_ends = ends[mask]
        job_links = links_exec[mask]
        job_elems = elems_exec[mask]
        job_costs = costs_exec[mask]
        packets = np.bincount(job_links, minlength=low.n_links)
        elems_per = np.bincount(
            job_links, weights=job_elems.astype(np.float64),
            minlength=low.n_links,
        )
        busy_per = np.bincount(
            job_links, weights=job_costs, minlength=low.n_links
        )
        stats = LinkStats()
        busy: dict[DirectedEdge, float] = {}
        pk = packets.tolist()
        el = elems_per.tolist()
        bz = busy_per.tolist()
        for li in np.flatnonzero(packets).tolist():
            edge = DirectedEdge(lsrc[li], ldst[li])
            stats.packets[edge] = pk[li]
            stats.elems[edge] = int(el[li])
            busy[edge] = bz[li]
        slices.append(JobSlice(
            position=pos,
            scheduled=int(scheduled_per[pos]),
            executed=n_exec,
            elems=int(job_elems.sum()),
            link_time=float(job_costs.sum()),
            first_start=float(job_starts.min()),
            finish=float(job_ends.max()),
            start_times=sorted(job_starts.tolist()),
            link_stats=stats,
            link_busy=busy,
        ))
    return ExecutionView(program=program, raw=raw, slices=slices)
