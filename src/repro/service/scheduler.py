"""The multi-tenant collective service: admission loop + shared cube.

:class:`CollectiveService` admits a stream of :class:`~repro.service.
jobs.JobSpec` onto one shared hypercube and executes them concurrently
on the vectorized event engine — shared-link contention is enforced by
the same port-model admission rules every single-collective run obeys,
because concurrency is expressed *in the program itself*: admitted
jobs are merged into one :class:`~repro.sim.multi.MergedProgram`
(chunks namespaced per job, policy order = program order = contention
priority, admission instants as per-chunk release times) and the
merged program is executed whole.

Admission loop
--------------
Arrivals and admission control cannot be folded into one engine run —
whether a job may enter at time ``t`` depends on how many jobs are
still in flight at ``t``, which the engine only knows after running.
The scheduler therefore interleaves simulation and admission as a
fixpoint-free event loop:

1. process the earliest pending event (a job arrival, or a completion
   read off the current merged run);
2. completions free in-flight slots and accrue their tenant's
   link-time (the fair-share currency);
3. arrivals enter the wait queue (or are rejected by the queue cap);
4. every admission the control now allows gets ``release = t`` and a
   **frozen** policy key, and the merged program is re-simulated.

Re-simulating after an admission at time ``t`` cannot invalidate any
event already processed: the new job's transfers are release-gated to
start at or after ``t``, added contention only ever *delays* other
transfers, and every completion processed so far finished at or before
``t`` — a transfer that ended by ``t`` cannot be delayed by
occupations that begin at ``t`` or later.  The final run (after the
last admission) is therefore authoritative for all per-job accounting,
and the loop runs one merged simulation per admission batch, not per
event.

Determinism: the loop consumes only simulated-time quantities and
frozen keys — no wall clock, no hashing order.  The ``jobs`` worker
pool parallelizes *schedule generation* only (pure functions, results
reassembled in submission order), so worker count and start method
cannot change any result bit.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Sequence

from repro.collectives.api import ROOTED_OPS, check_delivery, collective_schedule
from repro.obs.instruments import service_run_finished
from repro.service.exec import ExecutionView, execute_program
from repro.service.jobs import JobResult, JobSpec
from repro.service.policies import SchedulingPolicy, resolve_policy
from repro.sim.engine import AsyncResult
from repro.sim.faults import DegradedResult, FaultPlan
from repro.sim.machine import MachineParams
from repro.sim.multi import JobEntry, MergedProgram, merge_programs
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule
from repro.topology.hypercube import Hypercube

__all__ = [
    "AdmissionControl",
    "CollectiveService",
    "ServiceResult",
    "run_service",
]


@dataclass(frozen=True)
class AdmissionControl:
    """Limits on how much work the service accepts at once.

    Attributes:
        max_in_flight_per_tenant: cap on one tenant's concurrently
            executing jobs (``None`` = unlimited).
        max_in_flight_total: cap on concurrently executing jobs across
            all tenants.
        queue_cap: cap on the wait queue; an arrival finding the queue
            full is rejected outright (``accepted=False``).  The cap is
            evaluated against the queue as it stands when the job
            arrives, after same-instant completions and admissions have
            been processed.
    """

    max_in_flight_per_tenant: int | None = None
    max_in_flight_total: int | None = None
    queue_cap: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "max_in_flight_per_tenant", "max_in_flight_total", "queue_cap"
        ):
            v = getattr(self, name)
            if v is not None and v < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {v}")

    @property
    def unconstrained(self) -> bool:
        """True when every job can be admitted the instant it arrives."""
        return (
            self.max_in_flight_per_tenant is None
            and self.max_in_flight_total is None
        )


def _quantile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of ascending ``sorted_samples``."""
    if not sorted_samples:
        return float("nan")
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


@dataclass
class ServiceResult:
    """Outcome of one service run.

    Attributes:
        policy: name of the scheduling policy that ran.
        jobs: per-job results, indexed by ``job_id`` (submission
            order) — including rejected jobs.
        makespan: completion time of the whole shared-cube run.
        admission: the admission control that was applied.
        program: the final merged program (``None`` for an empty run).
        view: the final engine run + per-job decomposition (``None``
            for an empty run) — the hook the differential and property
            tests reach through.
    """

    policy: str
    jobs: list[JobResult]
    makespan: float
    admission: AdmissionControl
    program: MergedProgram | None = None
    view: ExecutionView | None = None

    @property
    def raw(self) -> "AsyncResult | DegradedResult | None":
        """The underlying engine result of the final merged run."""
        return self.view.raw if self.view is not None else None

    @property
    def accepted(self) -> list[JobResult]:
        """Jobs that were admitted (eventually), in id order."""
        return [j for j in self.jobs if j.accepted]

    @property
    def rejected(self) -> list[JobResult]:
        """Jobs refused by admission control, in id order."""
        return [j for j in self.jobs if not j.accepted]

    @property
    def degraded(self) -> bool:
        """True when any accepted job lost transfers or deliveries."""
        return any(j.degraded for j in self.accepted)

    def tenants(self) -> list[str]:
        """All tenants that submitted jobs, sorted."""
        return sorted({j.tenant for j in self.jobs})

    def latency_summary(self) -> dict[str, dict[str, dict[str, float]]]:
        """Exact per-tenant latency quantiles over accepted jobs.

        Returns ``{tenant: {metric: {"p50", "p99", "mean", "max",
        "count"}}}`` for ``completion_time`` and ``queueing_delay``,
        computed from the raw samples (nearest-rank), not from
        histogram buckets.
        """
        out: dict[str, dict[str, dict[str, float]]] = {}
        for tenant in self.tenants():
            mine = [j for j in self.accepted if j.tenant == tenant]
            if not mine:
                continue
            per: dict[str, dict[str, float]] = {}
            for metric in ("completion_time", "queueing_delay"):
                samples = sorted(getattr(j, metric) for j in mine)
                per[metric] = {
                    "p50": _quantile(samples, 0.50),
                    "p99": _quantile(samples, 0.99),
                    "mean": sum(samples) / len(samples),
                    "max": samples[-1],
                    "count": float(len(samples)),
                }
            out[tenant] = per
        return out

    def to_dict(self) -> dict:
        """JSON-ready summary (the ``--metrics-json`` service block)."""
        return {
            "policy": self.policy,
            "makespan": self.makespan,
            "jobs_submitted": len(self.jobs),
            "jobs_accepted": len(self.accepted),
            "jobs_rejected": len(self.rejected),
            "jobs_degraded": sum(1 for j in self.accepted if j.degraded),
            "tenants": self.latency_summary(),
            "jobs": [
                {
                    "job_id": j.job_id,
                    "tenant": j.tenant,
                    "op": j.spec.op,
                    "accepted": j.accepted,
                    "reject_reason": j.reject_reason,
                    "arrival": j.spec.arrival,
                    "admit_time": j.admit_time,
                    "start_time": j.start_time,
                    "finish_time": j.finish_time,
                    "queueing_delay": j.queueing_delay,
                    "completion_time": j.completion_time,
                    "transfers": j.transfers,
                    "elems": j.elems,
                    "link_time": j.link_time,
                    "degraded": j.degraded,
                }
                for j in self.jobs
            ],
        }


def _build_schedule(args: tuple) -> tuple[Schedule, dict[int, set[Chunk]]]:
    """Worker-side schedule generation (module-level for spawn pickling)."""
    dimension, op, algorithm, source, m, b, port_value, subtree = args
    return collective_schedule(
        Hypercube(dimension), op, algorithm, source, m, b,
        PortModel(port_value), subtree,
    )


@dataclass
class _Admitted:
    """Scheduler-internal record of a job on the cube."""

    job_id: int
    spec: JobSpec
    entry: JobEntry
    key: tuple
    release: float
    position: int = -1  # entry position in the current merged program
    completed: bool = False


class CollectiveService:
    """A long-lived scheduler for collective jobs on one shared cube.

    Args:
        cube: the shared hypercube.
        port_model: port model every schedule is generated for and the
            merged run is executed under.
        machine: cost parameters (default unit costs).
        policy: scheduling policy — a name from
            :data:`repro.service.policies.POLICIES` or an instance.
        admission: admission control limits (default: unlimited).
        faults: dead links/nodes active during the run; with
            ``on_fault="report"`` only the jobs whose trees cross a
            dead resource degrade, everything else completes.
        on_fault: ``"raise"`` (default) or ``"report"``.
        jobs: worker processes for schedule pregeneration (``None``/1 =
            inline, 0 = all cores).  Worker count never changes
            results.
        mp_context: multiprocessing start method for the worker pool
            (``"spawn"``/``"fork"``/``None`` = platform default).

    Typical use::

        service = CollectiveService(Hypercube(10), policy="fair-share")
        for spec in specs:
            service.submit(spec)
        result = service.run()
    """

    def __init__(
        self,
        cube: Hypercube,
        port_model: PortModel = PortModel.ONE_PORT_FULL,
        machine: MachineParams | None = None,
        policy: "str | SchedulingPolicy" = "fifo",
        admission: AdmissionControl | None = None,
        faults: FaultPlan | None = None,
        on_fault: str = "raise",
        jobs: int | None = None,
        mp_context: str | None = None,
    ):
        self.cube = cube
        self.port_model = port_model
        self.machine = machine or MachineParams()
        self.policy = resolve_policy(policy)
        self.admission = admission or AdmissionControl()
        self.faults = faults
        self.on_fault = on_fault
        self.jobs = jobs
        self.mp_context = mp_context
        self._specs: list[JobSpec] = []

    def submit(self, spec: JobSpec) -> int:
        """Register one job; returns its ``job_id`` (submission order)."""
        if spec.op in ROOTED_OPS:
            self.cube.check_node(spec.source)
        self._specs.append(spec)
        return len(self._specs) - 1

    def submit_many(self, specs: Iterable[JobSpec]) -> list[int]:
        """Register several jobs; returns their ids."""
        return [self.submit(s) for s in specs]

    # -- schedule pregeneration ---------------------------------------

    def _schedule_key(self, spec: JobSpec) -> tuple:
        return (
            self.cube.dimension, spec.op, spec.algorithm, spec.source,
            spec.message_elems, spec.packet_elems, self.port_model.value,
            spec.subtree_order,
        )

    def _pregenerate(self) -> dict[tuple, tuple[Schedule, dict[int, set[Chunk]]]]:
        keys: list[tuple] = []
        seen = set()
        for spec in self._specs:
            k = self._schedule_key(spec)
            if k not in seen:
                seen.add(k)
                keys.append(k)
        workers = self.jobs
        if workers == 0:
            workers = os.cpu_count() or 1
        built: dict[tuple, tuple[Schedule, dict[int, set[Chunk]]]] = {}
        if workers is None or workers <= 1 or len(keys) <= 1:
            for k in keys:
                built[k] = _build_schedule(k)
            return built
        import multiprocessing

        ctx = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else None
        )
        with ProcessPoolExecutor(
            max_workers=min(workers, len(keys)), mp_context=ctx
        ) as pool:
            for k, out in zip(keys, pool.map(_build_schedule, keys)):
                built[k] = out
        return built

    # -- the admission event loop --------------------------------------

    def run(self) -> ServiceResult:
        """Admit and execute every submitted job; returns the result."""
        t0 = perf_counter()
        specs = self._specs
        results = [JobResult(job_id=i, spec=s) for i, s in enumerate(specs)]
        if not specs:
            result = ServiceResult(
                policy=self.policy.name, jobs=[], makespan=0.0,
                admission=self.admission,
            )
            service_run_finished(result, seconds=perf_counter() - t0)
            return result

        schedules = self._pregenerate()
        ctl = self.admission
        policy = self.policy
        # arrival processing order: time, then submission order
        arrivals = sorted(range(len(specs)), key=lambda i: (specs[i].arrival, i))
        ai = 0
        queue: list[int] = []  # job ids waiting for admission
        admitted: list[_Admitted] = []
        by_id: dict[int, _Admitted] = {}
        tenant_link_time: dict[str, float] = {}
        in_flight_total = 0
        in_flight_tenant: dict[str, int] = {}
        admit_seq = 0
        view: ExecutionView | None = None

        def _finish_of(a: _Admitted) -> float:
            assert view is not None
            f = view.slices[a.position].finish
            # a job whose every transfer was cancelled by a fault
            # resolves at its release instant
            return a.release if math.isnan(f) else f

        def _resimulate() -> None:
            nonlocal view
            order = sorted(admitted, key=lambda a: a.key)
            for pos, a in enumerate(order):
                a.position = pos
            program = merge_programs([a.entry for a in order])
            view = execute_program(
                self.cube, program, self.port_model, self.machine,
                faults=self.faults, on_fault=self.on_fault,
            )

        def _admit(job_id: int, t: float) -> None:
            nonlocal admit_seq, in_flight_total
            spec = specs[job_id]
            sched, initial = schedules[self._schedule_key(spec)]
            key = policy.admission_key(
                spec, admit_seq, tenant_link_time.get(spec.tenant, 0.0)
            )
            admit_seq += 1
            rec = _Admitted(
                job_id=job_id, spec=spec, key=key, release=t,
                entry=JobEntry(
                    tag=job_id, schedule=sched, initial=initial, release=t
                ),
            )
            admitted.append(rec)
            by_id[job_id] = rec
            results[job_id].admit_time = t
            in_flight_total += 1
            in_flight_tenant[spec.tenant] = (
                in_flight_tenant.get(spec.tenant, 0) + 1
            )

        def _drain_queue(t: float) -> bool:
            """Admit every queued job the control allows; True if any."""
            any_admitted = False
            while queue:
                # candidates whose tenant still has headroom
                viable = [
                    j for j in queue
                    if ctl.max_in_flight_per_tenant is None
                    or in_flight_tenant.get(specs[j].tenant, 0)
                    < ctl.max_in_flight_per_tenant
                ]
                if not viable:
                    break
                if (
                    ctl.max_in_flight_total is not None
                    and in_flight_total >= ctl.max_in_flight_total
                ):
                    break
                # the policy picks who goes first; arrival order breaks
                # ties (queue is kept in arrival order)
                best = min(
                    viable,
                    key=lambda j: policy.admission_key(
                        specs[j], queue.index(j),
                        tenant_link_time.get(specs[j].tenant, 0.0),
                    ),
                )
                queue.remove(best)
                _admit(best, t)
                any_admitted = True
            return any_admitted

        # Fast path: with no in-flight caps every job is admitted the
        # instant it arrives, and a static-key policy (fifo, priority)
        # fixes every admission key from the spec + arrival order alone
        # — so the event loop's interleaved re-simulations would all be
        # superseded by the final run anyway.  Admit everything up
        # front and simulate once; results are identical to the loop's
        # (the determinism suite pins this).
        if ctl.unconstrained and policy.static_keys:
            for j in arrivals:
                _admit(j, specs[j].arrival)
            _resimulate()
            ai = len(arrivals)

        while True:
            next_arrival = (
                specs[arrivals[ai]].arrival if ai < len(arrivals) else None
            )
            running = [a for a in admitted if not a.completed]
            next_completion = (
                min(_finish_of(a) for a in running) if running else None
            )
            if next_arrival is None and next_completion is None:
                break
            if next_completion is None or (
                next_arrival is not None and next_arrival <= next_completion
            ):
                t = next_arrival
            else:
                t = next_completion

            # 1. completions at t free slots and accrue fair-share usage
            for a in running:
                if not a.completed and _finish_of(a) <= t:
                    a.completed = True
                    in_flight_total -= 1
                    in_flight_tenant[a.spec.tenant] -= 1
                    assert view is not None
                    tenant_link_time[a.spec.tenant] = (
                        tenant_link_time.get(a.spec.tenant, 0.0)
                        + view.slices[a.position].link_time
                    )
            # 2. freed slots first serve the existing queue ...
            any_admitted = _drain_queue(t)
            # 3. ... then arrivals at t join (or bounce off the cap) ...
            while ai < len(arrivals) and specs[arrivals[ai]].arrival <= t:
                j = arrivals[ai]
                ai += 1
                if ctl.queue_cap is not None and len(queue) >= ctl.queue_cap:
                    results[j].accepted = False
                    results[j].reject_reason = (
                        f"queue full ({ctl.queue_cap} waiting)"
                    )
                    continue
                queue.append(j)
            # 4. ... and are admitted in turn if the control allows
            any_admitted = _drain_queue(t) or any_admitted
            if any_admitted:
                _resimulate()

        # -- final accounting out of the authoritative last run --------
        makespan = 0.0
        if view is not None:
            makespan = view.makespan
            for a in admitted:
                r = results[a.job_id]
                s = view.slices[a.position]
                r.start_time = s.first_start
                r.finish_time = _finish_of(a)
                r.transfers = s.executed
                r.elems = s.elems
                r.link_time = s.link_time
                r.link_stats = s.link_stats
                r.holdings = view.job_holdings(a.position)
                r.undelivered = check_delivery(
                    self.cube, a.spec.op, a.spec.source,
                    a.entry.schedule, r.holdings,
                )
                r.degraded = bool(r.undelivered) or s.executed < s.scheduled
        program = view.program if view is not None else None
        result = ServiceResult(
            policy=policy.name,
            jobs=results,
            makespan=makespan,
            admission=ctl,
            program=program,
            view=view,
        )
        service_run_finished(result, seconds=perf_counter() - t0)
        return result


def run_service(
    cube: Hypercube,
    specs: Iterable[JobSpec],
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    machine: MachineParams | None = None,
    policy: "str | SchedulingPolicy" = "fifo",
    admission: AdmissionControl | None = None,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
    jobs: int | None = None,
    mp_context: str | None = None,
) -> ServiceResult:
    """One-shot convenience: submit ``specs`` and run the service."""
    service = CollectiveService(
        cube, port_model, machine, policy, admission,
        faults=faults, on_fault=on_fault, jobs=jobs, mp_context=mp_context,
    )
    service.submit_many(specs)
    return service.run()
