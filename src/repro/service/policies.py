"""Scheduling policies: how admitted jobs rank in the merged program.

Program order is contention priority in the event engines (rounds are
priorities, not barriers — see :mod:`repro.sim.multi`), so a policy is
nothing more than a *sort key over admitted jobs*: the merged program
lists entries in key order, and whenever two jobs want the same link or
port at the same instant, the earlier entry wins.

Keys are **frozen at admission**.  A job's key never changes once it is
on the cube, which keeps the scheduler's incremental re-simulation
consistent (an admission at time ``t`` must not reorder transfers that
already ran before ``t``) and makes runs reproducible by construction.

Policies:

* ``"fifo"`` — admission order; ties in arrival resolve by submission
  order.
* ``"priority"`` — strict priority (larger ``JobSpec.priority`` first),
  admission order within a class.  Preemptive in the *link* sense: a
  high-priority job admitted mid-stream outranks every queued transfer
  of lower classes from its release instant on, but packets already in
  flight complete (store-and-forward hardware does not drop a packet
  mid-wire).
* ``"fair-share"`` — jobs rank by their tenant's cumulative link-time
  consumption at admission (least-consumed tenant first), so a tenant
  burning the cube drifts to the back while light tenants cut ahead;
  admission order breaks ties.
"""

from __future__ import annotations

from repro.service.jobs import JobSpec

__all__ = ["SchedulingPolicy", "POLICIES", "resolve_policy"]


class SchedulingPolicy:
    """A priority ranking over admitted jobs (see module docstring).

    Subclasses implement :meth:`admission_key`; smaller keys run with
    higher contention priority in the merged program.
    """

    #: registry name of the policy
    name = "abstract"

    #: True when :meth:`admission_key` ignores ``tenant_link_time`` —
    #: i.e. the key is a pure function of the spec and admission order.
    #: With unconstrained admission control the scheduler then knows
    #: every key up front and runs a single merged simulation instead
    #: of one per admission batch.
    static_keys = False

    def admission_key(
        self,
        spec: JobSpec,
        admit_seq: int,
        tenant_link_time: float,
    ) -> tuple:
        """The job's frozen priority key, computed at admission.

        Args:
            spec: the job being admitted.
            admit_seq: monotone admission sequence number (tie-break).
            tenant_link_time: simulated link-time the job's tenant had
                consumed before this admission instant.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FifoPolicy(SchedulingPolicy):
    """First admitted, first served."""

    name = "fifo"
    static_keys = True

    def admission_key(self, spec, admit_seq, tenant_link_time):
        return (admit_seq,)


class PriorityPolicy(SchedulingPolicy):
    """Strict priority classes, FIFO within a class."""

    name = "priority"
    static_keys = True

    def admission_key(self, spec, admit_seq, tenant_link_time):
        return (-spec.priority, admit_seq)


class FairSharePolicy(SchedulingPolicy):
    """Least link-time-consumed tenant first."""

    name = "fair-share"

    def admission_key(self, spec, admit_seq, tenant_link_time):
        return (tenant_link_time, admit_seq)


#: name -> policy class, the pluggable registry
POLICIES: dict[str, type[SchedulingPolicy]] = {
    cls.name: cls for cls in (FifoPolicy, PriorityPolicy, FairSharePolicy)
}


def resolve_policy(policy: "str | SchedulingPolicy") -> SchedulingPolicy:
    """An instance for ``policy`` (a name from :data:`POLICIES` or an
    already-built :class:`SchedulingPolicy`, passed through)."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    cls = POLICIES.get(policy)
    if cls is None:
        raise ValueError(
            f"unknown policy {policy!r}; pick one of {sorted(POLICIES)}"
        )
    return cls()
