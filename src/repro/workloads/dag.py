"""The workload DAG model: collective phases with compute gaps.

Real training traffic is not one collective at a time — it is a *graph*
of them.  A data-parallel step interleaves compute with a gradient
allreduce (reduce-to-root + broadcast over the paper's trees), a
pipeline step chains activation transfers between stage roots, an MoE
step brackets expert compute with two alltoall exchanges, and
background "mice" flows ride along with no dependencies at all.

This module is the declarative half of that model:

* :class:`PhaseSpec` — one DAG node: either a **collective phase**
  (any op of :data:`repro.collectives.SCHEDULE_OPS`, lowered through
  :func:`repro.collectives.collective_schedule` at execution time)
  or a **compute phase** (``op=None``: a pure simulated-time gap).
  Every phase may carry a ``compute`` gap that elapses after its
  dependencies finish and before its communication starts — compute
  phases are the degenerate case with no communication at all.
* :class:`WorkloadDAG` — an immutable, validated set of phases:
  unique names, known dependencies, acyclic, with a deterministic
  topological order (declaration order among ready phases).
* :class:`Workload` — a multi-step workload: a cube dimension plus a
  per-step DAG builder (steps are serial; step ``s+1`` starts when
  every phase of step ``s`` has finished), and the fault/port/machine
  context the steps run under.

Execution lives in :mod:`repro.workloads.exec`; named, seeded
workloads in :mod:`repro.workloads.scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.collectives.api import ROOTED_OPS, SCHEDULE_OPS
from repro.sim.faults import FaultPlan
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel

__all__ = ["PhaseSpec", "WorkloadDAG", "Workload"]


@dataclass(frozen=True)
class PhaseSpec:
    """One node of a workload DAG.

    Attributes:
        name: phase identity, unique within its DAG (dependency target
            and report key).
        op: collective kind from
            :data:`repro.collectives.SCHEDULE_OPS`, or ``None`` for a
            pure compute phase.
        algorithm: algorithm within the op (``None`` = the op default,
            see :data:`repro.collectives.api.DEFAULT_ALGORITHMS`).
        source: root node (rooted ops only).
        message_elems: message size ``M`` (per destination for the
            personalized ops).
        packet_elems: maximum packet size ``B`` (default ``M``).
        subtree_order: BST in-subtree transmission order (§5.2).
        compute: simulated compute gap between the instant every
            dependency has finished and the instant this phase's
            communication may start (for a compute phase: its entire
            duration).  Also how mice flows stagger their start inside
            a step: a root phase's ``compute`` is its arrival offset.
        deps: names of phases that must finish first.
    """

    name: str
    op: str | None = None
    algorithm: str | None = None
    source: int = 0
    message_elems: int = 1
    packet_elems: int | None = None
    subtree_order: str = "depth_first"
    compute: float = 0.0
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phase name must be non-empty")
        if self.op is not None and self.op not in SCHEDULE_OPS:
            raise ValueError(
                f"phase {self.name!r}: op must be None or one of "
                f"{SCHEDULE_OPS}, got {self.op!r}"
            )
        if self.compute < 0:
            raise ValueError(
                f"phase {self.name!r}: compute must be >= 0, "
                f"got {self.compute}"
            )
        if self.op is None and self.compute == 0 and self.deps:
            # legal but almost certainly a mistake: a no-op join node
            # is fine, but flag negative-information specs early
            pass
        if self.message_elems < 1:
            raise ValueError(
                f"phase {self.name!r}: message_elems must be >= 1, "
                f"got {self.message_elems}"
            )
        if len(set(self.deps)) != len(self.deps):
            raise ValueError(
                f"phase {self.name!r}: duplicate dependencies {self.deps}"
            )

    @property
    def kind(self) -> str:
        """``"collective"`` or ``"compute"``."""
        return "compute" if self.op is None else "collective"

    @property
    def rooted(self) -> bool:
        """True when ``source`` names a root node."""
        return self.op in ROOTED_OPS


@dataclass(frozen=True)
class WorkloadDAG:
    """A validated DAG of phases (one workload step).

    Raises:
        ValueError: on duplicate phase names, unknown dependencies, or
            a dependency cycle.
    """

    phases: tuple[PhaseSpec, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a workload DAG needs at least one phase")
        names = [p.name for p in self.phases]
        seen: set[str] = set()
        for n in names:
            if n in seen:
                raise ValueError(f"duplicate phase name {n!r}")
            seen.add(n)
        for p in self.phases:
            for d in p.deps:
                if d not in seen:
                    raise ValueError(
                        f"phase {p.name!r} depends on unknown phase {d!r}"
                    )
        self.topological()  # raises on cycles

    def __len__(self) -> int:
        return len(self.phases)

    def phase(self, name: str) -> PhaseSpec:
        """The phase registered under ``name``."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)

    def successors(self) -> dict[str, tuple[str, ...]]:
        """name -> names of phases depending on it (declaration order)."""
        out: dict[str, list[str]] = {p.name: [] for p in self.phases}
        for p in self.phases:
            for d in p.deps:
                out[d].append(p.name)
        return {k: tuple(v) for k, v in out.items()}

    def topological(self) -> tuple[PhaseSpec, ...]:
        """Phases in a deterministic topological order.

        Kahn's algorithm with declaration order breaking ties, so the
        order — and everything downstream that consumes it, like
        merged-program priority — is a pure function of the spec.
        """
        remaining = {p.name: set(p.deps) for p in self.phases}
        order: list[PhaseSpec] = []
        emitted: set[str] = set()
        while remaining:
            ready = [
                p for p in self.phases
                if p.name in remaining and not (remaining[p.name] - emitted)
            ]
            if not ready:
                cyclic = sorted(remaining)
                raise ValueError(
                    f"dependency cycle among phases {cyclic}"
                )
            for p in ready:
                order.append(p)
                emitted.add(p.name)
                del remaining[p.name]
        return tuple(order)

    @property
    def collective_phases(self) -> tuple[PhaseSpec, ...]:
        """The phases that move data, in declaration order."""
        return tuple(p for p in self.phases if p.op is not None)

    @property
    def serial(self) -> bool:
        """True when no two collective phases can ever overlap.

        Holds when the collective phases form a chain under the
        transitive dependency closure — the precondition for the
        ``"runtime"`` execution backend, which runs one collective at
        a time on the actor cluster.
        """
        closure: dict[str, set[str]] = {}
        for p in self.topological():
            anc: set[str] = set()
            for d in p.deps:
                anc.add(d)
                anc |= closure[d]
            closure[p.name] = anc
        colls = [p.name for p in self.collective_phases]
        for i, a in enumerate(colls):
            for b in colls[i + 1:]:
                if a not in closure[b] and b not in closure[a]:
                    return False
        return True


@dataclass(frozen=True)
class Workload:
    """A multi-step workload on one cube.

    Attributes:
        name: workload identity (report + metrics label).
        dimension: hypercube dimension every phase runs on.
        dag_builder: ``step index -> WorkloadDAG`` — pure and
            deterministic (seeded scenarios close over their RNG
            derivation, never over shared mutable state), so the same
            workload object always produces the same step DAGs.
        port_model: port model all schedules are generated for.
        machine: cost parameters (default unit costs).
        faults: dead links/nodes active during the run.
        on_fault: ``"raise"`` (default) or ``"report"`` — with
            ``"report"``, phases crossing dead hardware degrade and the
            step report marks them, nothing crashes.
    """

    name: str
    dimension: int
    dag_builder: Callable[[int], WorkloadDAG]
    port_model: PortModel = PortModel.ONE_PORT_FULL
    machine: MachineParams | None = None
    faults: FaultPlan | None = field(default=None)
    on_fault: str = "raise"

    def dag(self, step: int) -> WorkloadDAG:
        """The DAG for step ``step`` (0-based)."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        return self.dag_builder(step)
