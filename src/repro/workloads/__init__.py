"""Workloads: DAGs of collective phases executed end to end.

The layer above single collectives and the multi-tenant service: a
*workload* is a multi-step DAG of collective phases with compute gaps
(data-parallel training steps, pipeline stages, expert-parallel
alltoall, background mice flows), lowered step by step onto the
merged-program machinery and reported with per-step timing, link
utilization, critical-path and straggler analyses.

Typical use::

    from repro.workloads import WORKLOAD_SCENARIOS, run_workload

    workload = WORKLOAD_SCENARIOS["dp-train-n10"].build(seed=0)
    report = run_workload(workload, steps=3)
    print(report.summary())
"""

from repro.workloads.dag import PhaseSpec, Workload, WorkloadDAG
from repro.workloads.exec import WORKLOAD_BACKENDS, run_workload
from repro.workloads.report import (
    CriticalPath,
    LinkUtilization,
    PhaseReport,
    StepReport,
    StragglerReport,
    WorkloadReport,
)
from repro.workloads.scenarios import (
    WORKLOAD_SCENARIOS,
    WorkloadScenario,
    get_workload_scenario,
)

__all__ = [
    "CriticalPath",
    "LinkUtilization",
    "PhaseReport",
    "PhaseSpec",
    "StepReport",
    "StragglerReport",
    "WORKLOAD_BACKENDS",
    "WORKLOAD_SCENARIOS",
    "Workload",
    "WorkloadDAG",
    "WorkloadReport",
    "WorkloadScenario",
    "get_workload_scenario",
    "run_workload",
]
