"""Step reports: what a workload run tells you about itself.

Everything in these dataclasses — and in every ``to_dict()`` — is a
*simulated-time* quantity derived from the engine run.  Wall-clock
seconds are deliberately absent: the step report is the artifact the
determinism suite fingerprints byte-for-byte across runs, worker
counts and start methods, and wall time would break that.  Wall time
goes to the observability registry instead
(:func:`repro.obs.instruments.workload_run_finished`).

Three layers:

* :class:`PhaseReport` — one phase's timing (ready / release / finish),
  traffic and delivery outcome.
* :class:`StepReport` — one step: all its phases plus the three derived
  analyses the workload layer exists for — per-link utilization,
  critical-path breakdown (compute vs. communication along the path
  that sets the step time), and straggler analysis (which nodes saw
  their last byte latest, and by how much).
* :class:`WorkloadReport` — the whole run: per-step reports plus run
  totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "PhaseReport",
    "StepReport",
    "WorkloadReport",
    "LinkUtilization",
    "StragglerReport",
    "CriticalPath",
]


def _median(sorted_samples: list[float]) -> float:
    """Median of ascending ``sorted_samples`` (nan when empty)."""
    n = len(sorted_samples)
    if not n:
        return float("nan")
    mid = n // 2
    if n % 2:
        return sorted_samples[mid]
    return (sorted_samples[mid - 1] + sorted_samples[mid]) / 2.0


@dataclass
class PhaseReport:
    """One phase's outcome within a step.

    Times are absolute simulated instants (the run's clock, not the
    step's): ``ready`` = when the last dependency finished (step start
    for roots), ``release`` = ``ready + compute`` = when communication
    may begin, ``finish`` = when the phase's last transfer ended (for a
    compute phase: ``release``).

    ``comm_time`` is ``finish - release`` — it includes contention
    stalls against concurrent phases, which is exactly the number the
    critical-path breakdown needs.
    """

    name: str
    kind: str
    op: str | None
    algorithm: str | None
    ready: float
    release: float
    finish: float
    compute: float
    transfers_scheduled: int = 0
    transfers_executed: int = 0
    elems: int = 0
    link_time: float = 0.0
    degraded: bool = False
    undelivered_nodes: tuple[int, ...] = ()

    @property
    def comm_time(self) -> float:
        """Time from communication release to last delivery."""
        return self.finish - self.release

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "op": self.op,
            "algorithm": self.algorithm,
            "ready": self.ready,
            "release": self.release,
            "finish": self.finish,
            "compute": self.compute,
            "comm_time": self.comm_time,
            "transfers_scheduled": self.transfers_scheduled,
            "transfers_executed": self.transfers_executed,
            "elems": self.elems,
            "link_time": self.link_time,
            "degraded": self.degraded,
            "undelivered_nodes": list(self.undelivered_nodes),
        }


@dataclass
class LinkUtilization:
    """Per-link busy-time summary of one step.

    Utilization of a directed link = its busy time over the step
    duration; ``mean`` averages over *used* links only (a mostly idle
    cube would otherwise drown the signal in zeros).
    """

    links_used: int = 0
    max: float = 0.0
    mean: float = 0.0
    busiest: tuple[tuple[str, float], ...] = ()

    def to_dict(self) -> dict:
        return {
            "links_used": self.links_used,
            "max": self.max,
            "mean": self.mean,
            "busiest": [[edge, util] for edge, util in self.busiest],
        }


@dataclass
class StragglerReport:
    """Which nodes finished receiving latest, and by how much.

    ``lag`` of a node = last delivery instant at the node minus the
    step start.  ``ratio`` = ``max_lag / median_lag`` — the classic
    straggler indicator: ~1 means the step finishes evenly, > 1 means
    a tail of nodes (fault reroutes, contended links) holds the step
    open after the median node is done.
    """

    nodes_observed: int = 0
    max_lag: float = float("nan")
    median_lag: float = float("nan")
    ratio: float = float("nan")
    slowest: tuple[tuple[int, float], ...] = ()

    def to_dict(self) -> dict:
        return {
            "nodes_observed": self.nodes_observed,
            "max_lag": self.max_lag,
            "median_lag": self.median_lag,
            "ratio": self.ratio,
            "slowest": [[node, lag] for node, lag in self.slowest],
        }


@dataclass
class CriticalPath:
    """The dependency chain that sets the step duration.

    Found by walking back from the latest-finishing phase through, at
    each phase, the dependency that finished last.  Because a phase
    becomes ready the instant its last dependency finishes, the path
    segments tile the step exactly:
    ``duration == compute_time + comm_time`` (up to float addition).
    """

    phases: tuple[str, ...] = ()
    compute_time: float = 0.0
    comm_time: float = 0.0

    @property
    def length(self) -> int:
        return len(self.phases)

    def to_dict(self) -> dict:
        return {
            "phases": list(self.phases),
            "compute_time": self.compute_time,
            "comm_time": self.comm_time,
        }


@dataclass
class StepReport:
    """One workload step, fully accounted.

    Attributes:
        step: step index (0-based).
        start: absolute simulated instant the step began.
        duration: ``end - start``.
        phases: per-phase reports, in the DAG's declaration order.
        link_utilization: busy-time summary over the step's links.
        critical_path: the chain that set the duration.
        stragglers: per-node last-delivery lag analysis.
    """

    step: int
    start: float
    duration: float
    phases: list[PhaseReport] = field(default_factory=list)
    link_utilization: LinkUtilization = field(default_factory=LinkUtilization)
    critical_path: CriticalPath = field(default_factory=CriticalPath)
    stragglers: StragglerReport = field(default_factory=StragglerReport)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def degraded(self) -> bool:
        """True when any phase lost transfers or deliveries."""
        return any(p.degraded for p in self.phases)

    def phase(self, name: str) -> PhaseReport:
        """The report of the phase called ``name``."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "start": self.start,
            "duration": self.duration,
            "end": self.end,
            "degraded": self.degraded,
            "phases": [p.to_dict() for p in self.phases],
            "link_utilization": self.link_utilization.to_dict(),
            "critical_path": self.critical_path.to_dict(),
            "stragglers": self.stragglers.to_dict(),
        }


@dataclass
class WorkloadReport:
    """Outcome of a whole workload run.

    The public result object of :func:`repro.workloads.run_workload`;
    ``to_dict()`` is the ``--metrics-json`` workload block and the
    determinism fingerprint.
    """

    workload: str
    dimension: int
    backend: str
    steps: list[StepReport] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def makespan(self) -> float:
        """Simulated completion time of the whole run."""
        return self.steps[-1].end if self.steps else 0.0

    @property
    def degraded(self) -> bool:
        return any(s.degraded for s in self.steps)

    def step_durations(self) -> list[float]:
        return [s.duration for s in self.steps]

    def summary(self) -> dict:
        """Run-level aggregates of the per-step numbers."""
        durs = self.step_durations()
        comm = sum(s.critical_path.comm_time for s in self.steps)
        comp = sum(s.critical_path.compute_time for s in self.steps)
        ratios = sorted(
            s.stragglers.ratio
            for s in self.steps
            if not math.isnan(s.stragglers.ratio)
        )
        return {
            "steps": len(durs),
            "makespan": self.makespan,
            "step_time_mean": sum(durs) / len(durs) if durs else 0.0,
            "step_time_max": max(durs, default=0.0),
            "critical_compute_time": comp,
            "critical_comm_time": comm,
            "straggler_ratio_max": ratios[-1] if ratios else float("nan"),
            "degraded_steps": sum(1 for s in self.steps if s.degraded),
        }

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "dimension": self.dimension,
            "backend": self.backend,
            "summary": self.summary(),
            "steps": [s.to_dict() for s in self.steps],
        }
