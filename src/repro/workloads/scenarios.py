"""Named, seeded workload scenarios for the CLI and CI.

A :class:`WorkloadScenario` bundles a cube size with a seeded workload
builder, so a full training-style run is reproducible from its name +
seed alone (``repro workload run --scenario dp-train-n10 --seed 7``).
The builders are pure: the same ``(name, seed)`` always yields the
same per-step DAGs, byte for byte — the determinism suite pins this.

Registry (``WORKLOAD_SCENARIOS``, listing order):

==================== ==================================================
``dp-train-n10``     n=10 data-parallel training step: forward +
                     two-bucket backward, each gradient bucket
                     allreduced (SBT reduce + MSBT broadcast) as soon
                     as its backward half finishes — buckets overlap
                     each other and the remaining backward compute
``moe-alltoall``     n=8 expert-parallel step: gate, alltoall
                     dispatch, expert compute, alltoall combine, then
                     the gate-weight allreduce
``pipeline-4stage``  n=8 pipeline step: four stages, each a compute
                     gap followed by a BST scatter of activations from
                     the stage root — a serial chain, so it also runs
                     on the actor runtime backend
``train-under-faults`` the dp-train step on n=8 with two dead links
                     (``on_fault="report"``): degraded phases are
                     reported, nothing crashes
``train-with-mice``  the dp-train step on n=8 plus background "mice"
                     broadcasts with seeded arrival offsets and
                     sources, contending with the gradient traffic
==================== ==================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.experiments.registry import ScenarioRegistry
from repro.sim.faults import FaultPlan
from repro.workloads.dag import PhaseSpec, Workload, WorkloadDAG

__all__ = ["WorkloadScenario", "WORKLOAD_SCENARIOS", "get_workload_scenario"]


@dataclass(frozen=True)
class WorkloadScenario:
    """A named, seeded workload on a fixed cube size.

    Attributes:
        name: registry key.
        description: one-line summary for ``repro workload list``.
        dimension: hypercube dimension of the workload.
        builder: ``seed -> Workload`` (pure, deterministic).
    """

    name: str
    description: str
    dimension: int
    builder: Callable[[int], "Workload"]

    def build(self, seed: int = 0) -> "Workload":
        """The scenario's workload for ``seed``."""
        return self.builder(seed)


def _dp_train_phases(
    seed: int, step: int, dimension: int,
    grad_elems: int = 64, packet_elems: int = 16,
) -> tuple[PhaseSpec, ...]:
    """The shared data-parallel training step skeleton.

    Forward, two backward halves, and per half a gradient-bucket
    allreduce — spelled as the paper's composition, an SBT reduce (the
    reverse broadcast) into a root followed by an MSBT broadcast out of
    it.  Bucket 1 (produced by the *first* backward half: backward
    walks the layers in reverse) overlaps both the second backward half
    and bucket 0's communication.  Compute gaps get a small seeded
    per-step jitter, like real step-time variation.
    """
    rng = random.Random(f"{seed}:dp:{step}")
    jitter = lambda base: base * (0.9 + 0.2 * rng.random())  # noqa: E731
    root0, root1 = 0, (1 << dimension) - 1
    return (
        PhaseSpec("fwd", compute=jitter(40.0)),
        PhaseSpec("bwd-upper", compute=jitter(30.0), deps=("fwd",)),
        PhaseSpec("bwd-lower", compute=jitter(30.0), deps=("bwd-upper",)),
        PhaseSpec(
            "grad1-reduce", op="reduce", algorithm="sbt", source=root1,
            message_elems=grad_elems, packet_elems=packet_elems,
            deps=("bwd-upper",),
        ),
        PhaseSpec(
            "grad1-bcast", op="broadcast", algorithm="msbt", source=root1,
            message_elems=grad_elems, packet_elems=packet_elems,
            deps=("grad1-reduce",),
        ),
        PhaseSpec(
            "grad0-reduce", op="reduce", algorithm="sbt", source=root0,
            message_elems=grad_elems, packet_elems=packet_elems,
            deps=("bwd-lower",),
        ),
        PhaseSpec(
            "grad0-bcast", op="broadcast", algorithm="msbt", source=root0,
            message_elems=grad_elems, packet_elems=packet_elems,
            deps=("grad0-reduce",),
        ),
        PhaseSpec(
            "optimizer", compute=jitter(20.0),
            deps=("grad0-bcast", "grad1-bcast"),
        ),
    )


def _dp_train_n10(seed: int) -> Workload:
    def build(step: int) -> WorkloadDAG:
        return WorkloadDAG(_dp_train_phases(seed, step, 10))

    return Workload(name="dp-train-n10", dimension=10, dag_builder=build)


def _pipeline_4stage(seed: int) -> Workload:
    dimension = 8
    stage_span = (1 << dimension) // 4

    def build(step: int) -> WorkloadDAG:
        rng = random.Random(f"{seed}:pipe:{step}")
        phases: list[PhaseSpec] = []
        prev: tuple[str, ...] = ()
        for stage in range(4):
            comp = f"stage{stage}-compute"
            xfer = f"stage{stage}-acts"
            phases.append(PhaseSpec(
                comp, compute=25.0 * (0.9 + 0.2 * rng.random()), deps=prev,
            ))
            phases.append(PhaseSpec(
                xfer, op="scatter", algorithm="bst",
                source=stage * stage_span, message_elems=32,
                packet_elems=16, deps=(comp,),
            ))
            prev = (xfer,)
        return WorkloadDAG(tuple(phases))

    return Workload(
        name="pipeline-4stage", dimension=dimension, dag_builder=build
    )


def _moe_alltoall(seed: int) -> Workload:
    dimension = 8

    def build(step: int) -> WorkloadDAG:
        rng = random.Random(f"{seed}:moe:{step}")
        jitter = lambda base: base * (0.9 + 0.2 * rng.random())  # noqa: E731
        return WorkloadDAG((
            PhaseSpec("gate", compute=jitter(15.0)),
            PhaseSpec(
                "dispatch", op="alltoall", algorithm="dimension-exchange",
                message_elems=8, deps=("gate",),
            ),
            PhaseSpec("experts", compute=jitter(50.0), deps=("dispatch",)),
            PhaseSpec(
                "combine", op="alltoall", algorithm="dimension-exchange",
                message_elems=8, deps=("experts",),
            ),
            PhaseSpec(
                "gate-grad-reduce", op="reduce", algorithm="sbt",
                source=0, message_elems=16, packet_elems=8,
                deps=("combine",),
            ),
            PhaseSpec(
                "gate-grad-bcast", op="broadcast", algorithm="msbt",
                source=0, message_elems=16, packet_elems=8,
                deps=("gate-grad-reduce",),
            ),
        ))

    return Workload(
        name="moe-alltoall", dimension=dimension, dag_builder=build
    )


def _train_with_mice(seed: int) -> Workload:
    dimension = 8

    def build(step: int) -> WorkloadDAG:
        phases = list(_dp_train_phases(
            seed, step, dimension, grad_elems=48, packet_elems=16,
        ))
        # background mice: small root-only broadcasts with no deps —
        # their compute gap is the seeded arrival offset into the step
        rng = random.Random(f"{seed}:mice:{step}")
        for i in range(3):
            phases.append(PhaseSpec(
                f"mice{i}", op="broadcast", algorithm="sbt",
                source=rng.randrange(1 << dimension),
                message_elems=1 + rng.randrange(4),
                compute=rng.uniform(0.0, 80.0),
            ))
        return WorkloadDAG(tuple(phases))

    return Workload(
        name="train-with-mice", dimension=dimension, dag_builder=build
    )


def _train_under_faults(seed: int) -> Workload:
    dimension = 8

    def build(step: int) -> WorkloadDAG:
        return WorkloadDAG(_dp_train_phases(
            seed, step, dimension, grad_elems=48, packet_elems=16,
        ))

    # two dead links near the bucket roots: the reduce/broadcast trees
    # that cross them degrade (reported, not fatal), everything else
    # completes — the straggler ratio shows the reroute tail
    faults = FaultPlan(dead_links=[(0, 1), (254, 255)])
    return Workload(
        name="train-under-faults", dimension=dimension, dag_builder=build,
        faults=faults, on_fault="report",
    )


WORKLOAD_SCENARIOS: ScenarioRegistry[WorkloadScenario] = ScenarioRegistry(
    "workload scenario",
    (
        WorkloadScenario(
            name="dp-train-n10",
            description=(
                "n=10 data-parallel training step: overlapped two-bucket "
                "gradient allreduce (SBT reduce + MSBT broadcast)"
            ),
            dimension=10,
            builder=_dp_train_n10,
        ),
        WorkloadScenario(
            name="pipeline-4stage",
            description=(
                "n=8 pipeline step: four compute stages chained by BST "
                "activation scatters (serial; runtime-backend capable)"
            ),
            dimension=8,
            builder=_pipeline_4stage,
        ),
        WorkloadScenario(
            name="moe-alltoall",
            description=(
                "n=8 expert-parallel step: alltoall dispatch/combine "
                "around expert compute, plus the gate-weight allreduce"
            ),
            dimension=8,
            builder=_moe_alltoall,
        ),
        WorkloadScenario(
            name="train-with-mice",
            description=(
                "n=8 dp-train step with seeded background mice "
                "broadcasts contending with the gradient traffic"
            ),
            dimension=8,
            builder=_train_with_mice,
        ),
        WorkloadScenario(
            name="train-under-faults",
            description=(
                "n=8 dp-train step over two dead links, on_fault=report: "
                "degraded phases are reported, the run completes"
            ),
            dimension=8,
            builder=_train_under_faults,
        ),
    ),
)


def get_workload_scenario(name: str) -> WorkloadScenario:
    """The scenario registered under ``name`` (helpful error if absent)."""
    return WORKLOAD_SCENARIOS.get_or_raise(name)
