"""Workload execution: lowering a phase DAG onto the engines.

One step = one (growing) merged program.  Every collective phase
becomes a :class:`~repro.sim.multi.JobEntry` (chunks namespaced by the
phase name, release time = the instant its dependencies + compute gap
allow communication to start) and concurrent phases contend for links
exactly like concurrent service jobs do — through the port-model
admission rules of one shared engine run.

The dependency loop
-------------------
A phase's ready time depends on when its dependencies *finish*, which
the engine only knows after running — the same chicken-and-egg the
service's admission loop solves, and the same solution applies:

1. process completions in increasing simulated time;
2. a phase becomes ready the instant its last dependency's completion
   is processed (at ``t`` = that finish time), and is admitted with
   ``release = t + compute``;
3. every admission re-simulates the step's merged program; finishes of
   *unprocessed* phases are refreshed from the new run.

Re-simulating after an admission at time ``t`` cannot invalidate a
completion already processed: the new phase's transfers are
release-gated to ``t + compute >= t``, added contention only delays
transfers, and every processed completion finished at or before ``t``.
(A wave-greedy executor that admits whole dependency "levels" at once
does *not* have this property — a small phase's successors would be
frozen against a stale finish time of a large concurrent phase — which
is why the loop is event-ordered.)

The final run of each step is authoritative for all reporting; steps
are serial (step ``s+1``'s program is released at step ``s``'s end),
so each step is its own merged program and cross-step contention is
structurally impossible.

Determinism: the loop consumes only simulated-time quantities, with
admission order (then declaration order) breaking every tie.  The
``jobs`` worker pool parallelizes schedule *generation* only — pure
functions reassembled in a deterministic order — so worker count and
start method never change a report bit.
"""

from __future__ import annotations

import math
from time import perf_counter

from repro.collectives.api import (
    DEFAULT_ALGORITHMS,
    check_delivery,
)
from repro.obs.instruments import workload_run_finished
from repro.service.exec import ExecutionView, execute_program
from repro.sim.machine import MachineParams
from repro.sim.multi import JobEntry, merge_programs, untag_holdings
from repro.sim.schedule import Chunk, Schedule
from repro.topology.hypercube import Hypercube
from repro.workloads.dag import PhaseSpec, Workload, WorkloadDAG
from repro.workloads.report import (
    CriticalPath,
    LinkUtilization,
    PhaseReport,
    StepReport,
    StragglerReport,
    WorkloadReport,
)

__all__ = ["run_workload", "WORKLOAD_BACKENDS"]

#: execution backends: ``"sim"`` lowers each step onto one merged
#: vectorized-engine run (concurrent phases contend; full reporting);
#: ``"runtime"`` executes each phase on the actor runtime — serial
#: DAGs only, runtime-supported ops only, summary reporting only.
WORKLOAD_BACKENDS = ("sim", "runtime")

#: top-k entries kept in the busiest-links / slowest-nodes tables
_TOP_K = 3


def _phase_key(dimension: int, port_value: str, p: PhaseSpec) -> tuple:
    """Schedule-cache key of a collective phase (normalized)."""
    assert p.op is not None
    algorithm = p.algorithm or DEFAULT_ALGORITHMS[p.op]
    packet = p.packet_elems if p.packet_elems is not None else p.message_elems
    source = p.source if p.rooted else 0
    return (
        dimension, p.op, algorithm, source, p.message_elems, packet,
        port_value, p.subtree_order,
    )


def _build_schedule(args: tuple) -> tuple[Schedule, dict[int, set[Chunk]]]:
    """Worker-side schedule generation (module-level for spawn pickling)."""
    from repro.collectives.api import collective_schedule
    from repro.sim.ports import PortModel

    dimension, op, algorithm, source, m, b, port_value, subtree = args
    return collective_schedule(
        Hypercube(dimension), op, algorithm, source, m, b,
        PortModel(port_value), subtree,
    )


def _pregenerate(
    workload: Workload,
    steps: int,
    jobs: int | None,
    mp_context: str | None,
) -> dict[tuple, tuple[Schedule, dict[int, set[Chunk]]]]:
    """Build every distinct schedule the run will need, once.

    Mirrors the service scheduler's pregeneration: keys are collected
    in (step, declaration) order, built in a worker pool when ``jobs``
    asks for one, and reassembled positionally — so parallelism cannot
    reorder or change anything.
    """
    keys: list[tuple] = []
    seen: set[tuple] = set()
    for s in range(steps):
        for p in workload.dag(s).collective_phases:
            k = _phase_key(workload.dimension, workload.port_model.value, p)
            if k not in seen:
                seen.add(k)
                keys.append(k)
    workers = jobs
    if workers == 0:
        import os

        workers = os.cpu_count() or 1
    built: dict[tuple, tuple[Schedule, dict[int, set[Chunk]]]] = {}
    if workers is None or workers <= 1 or len(keys) <= 1:
        for k in keys:
            built[k] = _build_schedule(k)
        return built
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    ctx = multiprocessing.get_context(mp_context) if mp_context else None
    with ProcessPoolExecutor(
        max_workers=min(workers, len(keys)), mp_context=ctx
    ) as pool:
        for k, out in zip(keys, pool.map(_build_schedule, keys)):
            built[k] = out
    return built


def _link_utilization(
    view: ExecutionView, duration: float
) -> LinkUtilization:
    """Busy-time / duration per used directed link, summarized."""
    busy = view.link_busy_total()
    if not busy or duration <= 0:
        return LinkUtilization()
    utils = sorted(
        ((f"{e.src}->{e.dst}", b / duration) for e, b in busy.items()),
        key=lambda item: (-item[1], item[0]),
    )
    vals = [u for _, u in utils]
    return LinkUtilization(
        links_used=len(vals),
        max=vals[0],
        mean=sum(vals) / len(vals),
        busiest=tuple(utils[:_TOP_K]),
    )


def _stragglers(
    view: ExecutionView, machine: MachineParams, t0: float
) -> StragglerReport:
    """Per-node last-delivery lag, from the transfer log's provenance."""
    log = view.raw.transfer_log
    if log is None:
        return StragglerReport()
    ids = [int(i) for i in log.ids]
    starts = [float(s) for s in log.starts]
    if not ids:
        return StragglerReport()
    transfers = view.program.schedule.all_transfers()
    sizes = view.program.schedule.chunk_sizes
    last: dict[int, float] = {}
    for i, start in zip(ids, starts):
        t = transfers[i]
        end = start + machine.send_cost(sum(sizes[c] for c in t.chunks))
        if end > last.get(t.dst, -math.inf):
            last[t.dst] = end
    lags = sorted((node, end - t0) for node, end in last.items())
    by_lag = sorted(lags, key=lambda item: (-item[1], item[0]))
    ordered = sorted(lag for _, lag in lags)
    max_lag = ordered[-1]
    n = len(ordered)
    mid = n // 2
    median = (
        ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
    )
    return StragglerReport(
        nodes_observed=n,
        max_lag=max_lag,
        median_lag=median,
        ratio=max_lag / median if median > 0 else float("nan"),
        slowest=tuple(by_lag[:_TOP_K]),
    )


def _critical_path(
    dag: WorkloadDAG, reports: dict[str, PhaseReport]
) -> CriticalPath:
    """Walk back from the latest finish through the latest-finishing dep."""
    order = [p.name for p in dag.phases]
    # finish ties go to the later-declared phase: a zero-duration join
    # that closes the step is the path's true endpoint, not its input
    end_name = max(
        order, key=lambda n: (reports[n].finish, order.index(n))
    )
    path: list[str] = []
    current: str | None = end_name
    while current is not None:
        path.append(current)
        deps = dag.phase(current).deps
        if not deps:
            current = None
        else:
            current = max(
                deps, key=lambda d: (reports[d].finish, -deps.index(d))
            )
    path.reverse()
    compute = sum(reports[n].compute for n in path)
    comm = sum(max(reports[n].comm_time, 0.0) for n in path)
    return CriticalPath(
        phases=tuple(path), compute_time=compute, comm_time=comm
    )


def _run_step_sim(
    workload: Workload,
    step: int,
    t0: float,
    schedules: dict[tuple, tuple[Schedule, dict[int, set[Chunk]]]],
    cube: Hypercube,
    machine: MachineParams,
) -> StepReport:
    """Execute one step's DAG as an event-ordered merged program."""
    dag = workload.dag(step)
    topo = dag.topological()
    successors = dag.successors()
    specs = {p.name: p for p in dag.phases}

    ready: dict[str, float] = {}
    release: dict[str, float] = {}
    finish: dict[str, float] = {}
    admit_order: dict[str, int] = {}
    entries: list[JobEntry] = []  # collective phases, admission order
    position: dict[str, int] = {}  # phase name -> entry position
    processed: set[str] = set()
    view: ExecutionView | None = None

    def _admit(p: PhaseSpec, t: float) -> bool:
        """Admit ``p`` at ready time ``t``; True if a simulation is due."""
        ready[p.name] = t
        release[p.name] = t + p.compute
        admit_order[p.name] = len(admit_order)
        if p.op is None:
            finish[p.name] = release[p.name]
            return False
        sched, initial = schedules[
            _phase_key(workload.dimension, workload.port_model.value, p)
        ]
        position[p.name] = len(entries)
        entries.append(JobEntry(
            tag=p.name, schedule=sched, initial=initial,
            release=release[p.name],
        ))
        return True

    def _resimulate() -> None:
        nonlocal view
        program = merge_programs(entries)
        view = execute_program(
            cube, program, workload.port_model, machine,
            faults=workload.faults, on_fault=workload.on_fault,
        )
        for name, pos in position.items():
            if name in processed:
                # its transfers all ended at or before the latest
                # processed instant; added contention starts later and
                # cannot reach back (the admission-loop monotonicity
                # argument), so the recorded finish stands
                continue
            f = view.slices[pos].finish
            finish[name] = release[name] if math.isnan(f) else f

    need_sim = False
    for p in topo:
        if not p.deps:
            need_sim = _admit(p, t0) or need_sim
    if need_sim:
        _resimulate()

    while len(processed) < len(topo):
        pending = [n for n in finish if n not in processed]
        current = min(
            pending, key=lambda n: (finish[n], admit_order[n])
        )
        t = finish[current]
        processed.add(current)
        newly_ready = [
            specs[s] for s in successors[current]
            if s not in admit_order
            and all(d in processed for d in specs[s].deps)
        ]
        need_sim = False
        for p in newly_ready:
            # the just-processed dep finished at t, every other dep at
            # or before it (completions are processed in time order),
            # so the ready instant is exactly t
            need_sim = _admit(p, t) or need_sim
        if need_sim:
            _resimulate()

    # -- reporting out of the authoritative final run -----------------
    reports: dict[str, PhaseReport] = {}
    for p in dag.phases:
        rep = PhaseReport(
            name=p.name,
            kind=p.kind,
            op=p.op,
            algorithm=(
                (p.algorithm or DEFAULT_ALGORITHMS[p.op])
                if p.op is not None else None
            ),
            ready=ready[p.name],
            release=release[p.name],
            finish=finish[p.name],
            compute=p.compute,
        )
        if p.op is not None:
            assert view is not None
            s = view.slices[position[p.name]]
            holdings = untag_holdings(view.raw.holdings, p.name)
            undelivered = check_delivery(
                cube, p.op, p.source, entries[position[p.name]].schedule,
                holdings,
            )
            rep.transfers_scheduled = s.scheduled
            rep.transfers_executed = s.executed
            rep.elems = s.elems
            rep.link_time = s.link_time
            rep.undelivered_nodes = tuple(sorted(undelivered))
            rep.degraded = bool(undelivered) or s.executed < s.scheduled
        reports[p.name] = rep

    end = max(r.finish for r in reports.values())
    duration = end - t0
    return StepReport(
        step=step,
        start=t0,
        duration=duration,
        phases=[reports[p.name] for p in dag.phases],
        link_utilization=(
            _link_utilization(view, duration)
            if view is not None else LinkUtilization()
        ),
        critical_path=_critical_path(dag, reports),
        stragglers=(
            _stragglers(view, machine, t0)
            if view is not None else StragglerReport()
        ),
    )


def _run_step_runtime(
    workload: Workload,
    step: int,
    t0: float,
    cube: Hypercube,
    machine: MachineParams,
) -> StepReport:
    """Execute one serial step phase-by-phase on the actor runtime.

    Each collective runs standalone (the runtime has no merged-program
    notion), which is only meaningful when no two collectives could
    overlap — enforced via :attr:`WorkloadDAG.serial`.  Reporting is
    summary-level: per-phase times and traffic, critical path, but no
    link-utilization or straggler analysis (the runtime keeps no
    global transfer log).
    """
    from repro.collectives.api import broadcast as _broadcast
    from repro.collectives.api import scatter as _scatter

    dag = workload.dag(step)
    if not dag.serial:
        raise ValueError(
            f"step {step} of workload {workload.name!r} has concurrent "
            "collective phases; the runtime backend executes one "
            "collective at a time — use backend='sim'"
        )
    reports: dict[str, PhaseReport] = {}
    finish: dict[str, float] = {}
    for p in dag.topological():
        t = max((finish[d] for d in p.deps), default=t0)
        rel = t + p.compute
        rep = PhaseReport(
            name=p.name, kind=p.kind, op=p.op,
            algorithm=(
                (p.algorithm or DEFAULT_ALGORITHMS[p.op])
                if p.op is not None else None
            ),
            ready=t, release=rel, finish=rel, compute=p.compute,
        )
        if p.op is not None:
            if p.op not in ("broadcast", "scatter"):
                raise ValueError(
                    f"phase {p.name!r}: the runtime backend implements "
                    f"broadcast and scatter, not {p.op!r}"
                )
            fn = _broadcast if p.op == "broadcast" else _scatter
            result = fn(
                cube, p.source,
                p.algorithm or DEFAULT_ALGORITHMS[p.op],
                p.message_elems, p.packet_elems, workload.port_model,
                machine, backend="runtime",
                faults=workload.faults, on_fault=workload.on_fault,
            )
            rep.finish = rel + result.time
            rep.transfers_scheduled = result.schedule.num_transfers
            rep.transfers_executed = sum(
                result.link_stats.packets.values()
            )
            rep.elems = result.link_stats.total_elems()
            rep.undelivered_nodes = tuple(sorted(result.undelivered_nodes))
            rep.degraded = result.degraded
        finish[p.name] = rep.finish
        reports[p.name] = rep
    end = max(finish.values())
    return StepReport(
        step=step,
        start=t0,
        duration=end - t0,
        phases=[reports[p.name] for p in dag.phases],
        critical_path=_critical_path(dag, reports),
    )


def run_workload(
    workload: Workload,
    steps: int = 1,
    *,
    engine: str | None = None,
    backend: str = "sim",
    jobs: int | None = None,
    mp_context: str | None = None,
) -> WorkloadReport:
    """Execute ``steps`` steps of ``workload`` end to end.

    Args:
        workload: the workload to run (see
            :data:`repro.workloads.WORKLOAD_SCENARIOS` for named,
            seeded instances).
        steps: number of steps; step ``s+1`` starts at step ``s``'s
            finish, so steps never contend with each other.
        engine: event-engine selection.  The merged-program lowering
            needs release-time gating and the transfer log, which only
            the vectorized engine provides — ``None`` (the default) and
            ``"vectorized"`` are accepted; anything else raises.
        backend: ``"sim"`` (default) or ``"runtime"`` (serial DAGs of
            runtime-supported ops only).
        jobs: worker processes for schedule pregeneration (``None``/1 =
            inline, 0 = all cores).  Worker count never changes report
            bits.
        mp_context: start method for the pregeneration pool.

    Returns:
        A :class:`~repro.workloads.report.WorkloadReport` with one
        :class:`~repro.workloads.report.StepReport` per step.
    """
    t_wall = perf_counter()
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if backend not in WORKLOAD_BACKENDS:
        raise ValueError(
            f"backend must be one of {WORKLOAD_BACKENDS}, got {backend!r}"
        )
    if engine not in (None, "vectorized"):
        raise ValueError(
            "the workload merged-program lowering requires the "
            f"vectorized engine (release gating + transfer log), "
            f"got engine={engine!r}"
        )
    if workload.on_fault not in ("raise", "report"):
        raise ValueError(
            f"on_fault must be 'raise' or 'report', got {workload.on_fault!r}"
        )
    cube = Hypercube(workload.dimension)
    machine = workload.machine or MachineParams()
    report = WorkloadReport(
        workload=workload.name,
        dimension=workload.dimension,
        backend=backend,
    )
    if backend == "sim":
        schedules = _pregenerate(workload, steps, jobs, mp_context)
        t0 = 0.0
        for s in range(steps):
            step_report = _run_step_sim(
                workload, s, t0, schedules, cube, machine
            )
            report.steps.append(step_report)
            t0 = step_report.end
    else:
        t0 = 0.0
        for s in range(steps):
            step_report = _run_step_runtime(workload, s, t0, cube, machine)
            report.steps.append(step_report)
            t0 = step_report.end
    workload_run_finished(report, seconds=perf_counter() - t_wall)
    return report
