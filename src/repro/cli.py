"""Command-line interface: run collectives and reproduce paper results.

Usage (also available as ``python -m repro``)::

    python -m repro table 5                 # regenerate a paper table
    python -m repro figure 7                # regenerate a paper figure
    python -m repro sweep all --jobs 4      # every experiment, 4 workers
    python -m repro broadcast --dim 5 --algorithm msbt -M 960 -B 60
    python -m repro scatter --dim 5 --algorithm bst -M 64 --ports all
    python -m repro broadcast --topology torus --dim 2 --k 5 -M 60
    python -m repro all-broadcast --topology torus --dim 3 --k 4 --ports all
    python -m repro allreduce --dim 4 -M 128 --ports full
    python -m repro broadcast --dim 4 --backend runtime \
        --dead-link 0:1 --on-fault repair --trace-chrome trace.json
    python -m repro service list     # scenarios & scheduling policies
    python -m repro service run --scenario smoke-mix --policy fair-share \
        --seed 7 --metrics-json metrics.json
    python -m repro workload list    # DAG workload scenarios
    python -m repro workload run --scenario dp-train-n10 --steps 3 \
        --metrics-json metrics.json

``table``, ``figure`` and ``sweep`` accept ``--jobs N`` (default:
``REPRO_JOBS`` or serial; 0 = all cores) to fan the experiment's point
grid out over worker processes, and ``--cache-dir DIR`` (default:
``REPRO_CACHE_DIR``) to persist generated trees/schedules on disk
across runs.  Output is identical at any worker count.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from contextlib import nullcontext

from repro.collectives.api import (
    BROADCAST_ALGORITHMS,
    REDUCE_ALGORITHMS,
    SCATTER_ALGORITHMS,
    all_broadcast,
    allreduce,
    broadcast,
    reduce,
    scatter,
)
from repro.obs import configure_logging, profiled, write_metrics_json
from repro.runtime.trace import write_shard_chrome
from repro.sim.dispatch import ENGINES
from repro.sim.faults import FaultError, FaultPlan
from repro.sim.machine import IPSC_D7, MachineParams
from repro.sim.ports import PortModel
from repro.sim.validate import profile_schedule
from repro.service import POLICIES, AdmissionControl, run_service
from repro.topology import TOPOLOGY_KINDS, resolve_topology
from repro.topology.hypercube import Hypercube

__all__ = ["main", "build_parser"]

_PORT_CHOICES = {
    "half": PortModel.ONE_PORT_HALF,
    "full": PortModel.ONE_PORT_FULL,
    "all": PortModel.ALL_PORT,
}

#: sweep target name -> experiment runner name in repro.experiments
_SWEEP_TARGETS = {
    **{f"table{i}": f"run_table{i}" for i in range(1, 7)},
    **{f"fig{i}": f"run_fig{i}" for i in range(5, 9)},
    "scatter": "run_scatter_packet_sweep",
}


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes for the point grid "
             "(default: REPRO_JOBS or 1; 0 = all cores)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist generated trees/schedules under DIR "
             "(default: REPRO_CACHE_DIR)")
    _add_engine_option(parser)


def _add_topology_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology", choices=TOPOLOGY_KINDS, default="hypercube",
        help="host topology: hypercube (2^dim nodes) or torus "
             "(k-ary dim-cube, k^dim nodes)")
    parser.add_argument(
        "--k", type=int, default=3, metavar="K",
        help="torus arity (nodes per ring; --topology torus only; "
             "default 3)")


def _add_engine_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="event-engine implementation (default: REPRO_ENGINE or "
             "indexed; vectorized is bit-identical and much faster on "
             "large cubes)")


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the full metrics-registry snapshot (engine/runtime/"
             "cache/sweep counters, phase timings) to PATH as JSON "
             "('-' for stdout) when the command finishes")
    parser.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="append structured JSON-lines logs to PATH ('-' for stdout) "
             "while the command runs")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hypercube broadcasting & personalized communication "
        "(Ho & Johnsson, ICPP 1986 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t = sub.add_parser("table", help="regenerate one of the paper's tables")
    t.add_argument("number", type=int, choices=range(1, 7))
    _add_sweep_options(t)
    _add_obs_options(t)

    f = sub.add_parser("figure", help="regenerate one of the paper's figures")
    f.add_argument("number", type=int, choices=range(5, 9))
    _add_sweep_options(f)
    _add_obs_options(f)

    s = sub.add_parser(
        "sweep",
        help="run experiment sweeps (parallel workers, optional disk cache)",
    )
    s.add_argument(
        "targets", nargs="+",
        choices=sorted(_SWEEP_TARGETS) + ["all", "figures", "tables"],
        help="experiments to run (fig5..fig8, table1..table6, scatter, "
             "or the groups all/figures/tables)")
    _add_sweep_options(s)
    _add_obs_options(s)
    s.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="write per-point timing/cache telemetry for every target "
             "to PATH as JSON")

    svc = sub.add_parser(
        "service",
        help="multi-tenant collective service (concurrent jobs, one cube)",
    )
    svc_sub = svc.add_subparsers(dest="service_command", required=True)
    svc_sub.add_parser(
        "list", help="list workload scenarios and scheduling policies")
    sr = svc_sub.add_parser(
        "run", help="run a named scenario through the service scheduler")
    sr.add_argument("--scenario", required=True, metavar="NAME",
                    help="workload scenario (see 'repro service list')")
    sr.add_argument("--policy", choices=sorted(POLICIES), default="fifo",
                    help="scheduling policy for contention priority")
    sr.add_argument("--seed", type=int, default=0,
                    help="workload seed (same seed -> same job list)")
    sr.add_argument("--jobs", "-j", type=int, default=None,
                    help="worker processes for schedule pregeneration "
                         "(default: REPRO_JOBS or 1; 0 = all cores); "
                         "output is identical at any worker count")
    sr.add_argument("--ports", choices=sorted(_PORT_CHOICES), default="full",
                    help="port model: half (1 s or r), full (1 s and r), all")
    sr.add_argument("--ipsc", action="store_true",
                    help="use the iPSC/d7 machine model for transfer costs")
    sr.add_argument("--max-in-flight", type=int, default=None, metavar="N",
                    help="admission control: at most N jobs on the cube")
    sr.add_argument("--max-in-flight-per-tenant", type=int, default=None,
                    metavar="N",
                    help="admission control: at most N jobs per tenant "
                         "on the cube")
    sr.add_argument("--queue-cap", type=int, default=None, metavar="N",
                    help="admission control: reject arrivals once N jobs "
                         "are waiting")
    sr.add_argument("--dead-link", action="append", default=[],
                    metavar="A:B", dest="dead_links",
                    help="fail the link between nodes A and B mid-stream "
                         "(repeatable)")
    sr.add_argument("--dead-node", action="append", default=[], type=int,
                    metavar="V", dest="dead_nodes",
                    help="fail node V entirely (repeatable)")
    sr.add_argument("--on-fault", choices=("raise", "report"),
                    default="raise",
                    help="raise on lost deliveries, or report and mark "
                         "only the jobs whose trees cross dead hardware "
                         "as degraded")
    _add_obs_options(sr)

    wl = sub.add_parser(
        "workload",
        help="DAG workloads of collective phases (training steps, "
             "pipelines, expert parallelism)",
    )
    wl_sub = wl.add_subparsers(dest="workload_command", required=True)
    wl_sub.add_parser("list", help="list workload scenarios")
    wr = wl_sub.add_parser(
        "run", help="run a named workload scenario for a number of steps")
    wr.add_argument("--scenario", required=True, metavar="NAME",
                    help="workload scenario (see 'repro workload list')")
    wr.add_argument("--steps", type=int, default=1,
                    help="training steps to execute (serial; default 1)")
    wr.add_argument("--seed", type=int, default=0,
                    help="workload seed (same seed -> same step DAGs)")
    wr.add_argument("--backend", choices=("sim", "runtime"), default="sim",
                    help="sim: one merged vectorized-engine run per step "
                         "(concurrent phases contend); runtime: execute "
                         "each phase on the actor runtime (serial DAGs "
                         "of broadcast/scatter only)")
    wr.add_argument("--engine", choices=ENGINES, default=None,
                    help="event engine; the merged-program lowering "
                         "requires 'vectorized' (the default)")
    wr.add_argument("--jobs", "-j", type=int, default=None,
                    help="worker processes for schedule pregeneration "
                         "(default: 1; 0 = all cores); output is "
                         "identical at any worker count")
    wr.add_argument("--report-json", default=None, metavar="PATH",
                    help="write the full per-step workload report to "
                         "PATH as JSON ('-' for stdout)")
    _add_obs_options(wr)

    for name, algos in (("broadcast", BROADCAST_ALGORITHMS), ("scatter", SCATTER_ALGORITHMS)):
        c = sub.add_parser(name, help=f"simulate a {name} and report costs")
        c.add_argument("--dim", "-n", type=int, default=5,
                       help="topology dimension")
        _add_topology_options(c)
        c.add_argument("--source", "-s", type=int, default=0)
        c.add_argument("--algorithm", "-a", choices=algos, default=None,
                       help=f"routing algorithm (default: {algos[0]} on the "
                            "hypercube, ring on the torus)")
        c.add_argument("-M", "--message", type=int, default=1024,
                       help="message elements (per destination for scatter)")
        c.add_argument("-B", "--packet", type=int, default=None,
                       help="packet size in elements (default: M)")
        c.add_argument("--ports", choices=sorted(_PORT_CHOICES), default="full",
                       help="port model: half (1 s or r), full (1 s and r), all")
        c.add_argument("--ipsc", action="store_true",
                       help="use the iPSC/d7 machine model and the event engine")
        c.add_argument("--dead-link", action="append", default=[],
                       metavar="A:B", dest="dead_links",
                       help="fail the link between nodes A and B "
                            "(repeatable); routing avoids it")
        c.add_argument("--dead-node", action="append", default=[], type=int,
                       metavar="V", dest="dead_nodes",
                       help="fail node V entirely (repeatable)")
        c.add_argument("--on-fault", choices=("raise", "report", "repair"),
                       default="raise",
                       help="when faults disconnect nodes from the source: "
                            "raise an error, report them and serve the rest, "
                            "or (runtime backend only) time out and repair "
                            "over the survivor tree")
        c.add_argument("--backend", choices=("sim", "runtime"), default="sim",
                       help="sim: replay the central schedule on the engines; "
                            "runtime: execute on the actor-based "
                            "message-passing runtime")
        c.add_argument("--workers", type=int, default=None, metavar="K",
                       help="shard the runtime across K worker processes "
                            "(power of two; 0 = auto-size to the CPU count; "
                            "requires --backend runtime)")
        c.add_argument("--start-method", default=None,
                       choices=("fork", "spawn", "forkserver", "thread"),
                       help="worker launch mode for --workers > 1 "
                            "(default: fork, or REPRO_START_METHOD)")
        c.add_argument("--trace-jsonl", default=None, metavar="PATH",
                       help="write the runtime's per-packet trace to PATH "
                            "as JSON lines (requires --backend runtime)")
        c.add_argument("--trace-chrome", default=None, metavar="PATH",
                       help="write the runtime's per-packet trace to PATH "
                            "in Chrome trace_event format "
                            "(requires --backend runtime)")
        c.add_argument("--profile", action="store_true",
                       help="capture a cProfile of the collective and "
                            "print the hottest functions")
        _add_engine_option(c)
        _add_obs_options(c)

    rd = sub.add_parser(
        "reduce", help="simulate a reduction to a root and report costs")
    rd.add_argument("--dim", "-n", type=int, default=5,
                    help="topology dimension")
    _add_topology_options(rd)
    rd.add_argument("--root", "-s", type=int, default=0,
                    help="node the combined operand ends at")
    rd.add_argument("--algorithm", "-a", choices=REDUCE_ALGORITHMS,
                    default=None,
                    help="routing algorithm (default: sbt on the "
                         "hypercube, ring on the torus)")
    rd.add_argument("-M", "--message", type=int, default=1024,
                    help="operand elements per node")
    rd.add_argument("-B", "--packet", type=int, default=None,
                    help="packet size in elements (default: M)")
    rd.add_argument("--ports", choices=sorted(_PORT_CHOICES), default="full",
                    help="port model: half (1 s or r), full (1 s and r), all")
    rd.add_argument("--ipsc", action="store_true",
                    help="use the iPSC/d7 machine model and the event engine")
    _add_engine_option(rd)
    _add_obs_options(rd)

    ar = sub.add_parser(
        "allreduce",
        help="simulate reduce-to-root then broadcast-back and report costs")
    ar.add_argument("--dim", "-n", type=int, default=5,
                    help="topology dimension")
    _add_topology_options(ar)
    ar.add_argument("--root", "-s", type=int, default=0,
                    help="intermediate root for the two phases")
    ar.add_argument("--reduce-algorithm", choices=REDUCE_ALGORITHMS,
                    default=None,
                    help="reduce-phase algorithm (default per topology)")
    ar.add_argument("--broadcast-algorithm", choices=BROADCAST_ALGORITHMS,
                    default=None,
                    help="broadcast-phase algorithm (default: sbt on the "
                         "hypercube, ring on the torus)")
    ar.add_argument("-M", "--message", type=int, default=1024,
                    help="operand elements per node")
    ar.add_argument("-B", "--packet", type=int, default=None,
                    help="packet size in elements (default: M)")
    ar.add_argument("--ports", choices=sorted(_PORT_CHOICES), default="full",
                    help="port model: half (1 s or r), full (1 s and r), all")
    ar.add_argument("--ipsc", action="store_true",
                    help="use the iPSC/d7 machine model and the event engine")
    _add_engine_option(ar)
    _add_obs_options(ar)

    ab = sub.add_parser(
        "all-broadcast",
        help="simulate an all-to-all broadcast (every node learns every "
             "node's message) and report costs")
    ab.add_argument("--dim", "-n", type=int, default=5,
                    help="topology dimension")
    _add_topology_options(ab)
    ab.add_argument("-M", "--message", type=int, default=1,
                    help="message elements contributed per node")
    ab.add_argument("--ports", choices=sorted(_PORT_CHOICES), default="full",
                    help="port model: half (1 s or r), full (1 s and r), all")
    ab.add_argument("--ipsc", action="store_true",
                    help="use the iPSC/d7 machine model and the event engine")
    _add_engine_option(ab)
    _add_obs_options(ab)
    return parser


def _build_topology(args: argparse.Namespace):
    """The host topology a collective subcommand asked for."""
    try:
        return resolve_topology(
            getattr(args, "topology", "hypercube"), args.dim, k=args.k
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _parse_dead_link(spec: str) -> tuple[int, int]:
    try:
        a, _, b = spec.partition(":")
        return (int(a), int(b))
    except ValueError:
        raise SystemExit(f"--dead-link expects A:B with integer nodes, got {spec!r}")


def _expand_sweep_targets(targets: Sequence[str]) -> list[str]:
    """Resolve target groups, dedupe, keep a deterministic order."""
    expanded: list[str] = []
    for target in targets:
        if target == "all":
            expanded.extend(sorted(_SWEEP_TARGETS))
        elif target == "figures":
            expanded.extend(t for t in sorted(_SWEEP_TARGETS) if t.startswith("fig"))
        elif target == "tables":
            expanded.extend(t for t in sorted(_SWEEP_TARGETS) if t.startswith("table"))
        else:
            expanded.append(target)
    seen: set[str] = set()
    return [t for t in expanded if not (t in seen or seen.add(t))]


def _write_metrics(args: argparse.Namespace, **extra: object) -> None:
    """Honour ``--metrics-json`` after a command finishes."""
    if getattr(args, "metrics_json", None):
        write_metrics_json(
            args.metrics_json, extra={"command": args.command, **extra}
        )
        if args.metrics_json != "-":
            print(f"metrics written to {args.metrics_json}")


def _run_sweep_command(args: argparse.Namespace) -> int:
    from repro import experiments

    all_stats: dict[str, dict] = {}
    for target in _expand_sweep_targets(args.targets):
        runner = getattr(experiments, _SWEEP_TARGETS[target])
        report = runner(jobs=args.jobs, cache_dir=args.cache_dir)
        print(report.render())
        if report.sweep is not None:
            print(f"[{target}] {report.sweep.summary()}")
            all_stats[target] = report.sweep.to_dict()
        print()
    if args.stats_json:
        with open(args.stats_json, "w") as f:
            json.dump(all_stats, f, indent=2)
        print(f"sweep telemetry written to {args.stats_json}")
    _write_metrics(args, targets=list(all_stats))
    return 0


def _run_service_command(args: argparse.Namespace) -> int:
    from repro.experiments import SCENARIOS, get_scenario

    if args.service_command == "list":
        print("scenarios:")
        for name in sorted(SCENARIOS):
            print(f"  {name:<18} {SCENARIOS[name].description}")
        print("policies:")
        for name in sorted(POLICIES):
            print(f"  {name:<18} {POLICIES[name].__doc__.splitlines()[0]}")
        return 0

    try:
        scenario = get_scenario(args.scenario)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    specs = scenario.build(args.seed)
    admission = AdmissionControl(
        max_in_flight_per_tenant=args.max_in_flight_per_tenant,
        max_in_flight_total=args.max_in_flight,
        queue_cap=args.queue_cap,
    )
    faults = None
    if args.dead_links or args.dead_nodes:
        faults = FaultPlan(
            dead_links=[_parse_dead_link(s) for s in args.dead_links],
            dead_nodes=args.dead_nodes,
        )
    try:
        result = run_service(
            Hypercube(scenario.dimension),
            specs,
            port_model=_PORT_CHOICES[args.ports],
            machine=IPSC_D7 if args.ipsc else None,
            policy=args.policy,
            admission=admission,
            faults=faults,
            on_fault=args.on_fault,
            jobs=args.jobs,
        )
    except FaultError as exc:
        print(f"fault: {exc}", file=sys.stderr)
        return 1
    unit = " s (iPSC/d7)" if args.ipsc else ""
    print(f"service run: scenario {scenario.name!r} on n={scenario.dimension} "
          f"cube, policy {result.policy}, seed {args.seed}")
    print(f"  jobs submitted    : {len(result.jobs)}")
    print(f"  jobs accepted     : {len(result.accepted)}")
    if result.rejected:
        print(f"  jobs rejected     : {len(result.rejected)}")
    degraded = sum(1 for j in result.accepted if j.degraded)
    if degraded:
        print(f"  jobs degraded     : {degraded}")
    print(f"  makespan          : {result.makespan:.6g}{unit}")
    header = (f"  {'tenant':<12} {'jobs':>4} {'cmpl p50':>10} "
              f"{'cmpl p99':>10} {'queue p50':>10} {'queue p99':>10}")
    print(header)
    for tenant, metrics in result.latency_summary().items():
        cmpl = metrics["completion_time"]
        queue = metrics["queueing_delay"]
        print(f"  {tenant:<12} {int(cmpl['count']):>4} {cmpl['p50']:>10.4g} "
              f"{cmpl['p99']:>10.4g} {queue['p50']:>10.4g} "
              f"{queue['p99']:>10.4g}")
    _write_metrics(
        args,
        scenario=scenario.name,
        seed=args.seed,
        service=result.to_dict(),
    )
    return 0


def _run_workload_command(args: argparse.Namespace) -> int:
    from repro.workloads import (
        WORKLOAD_SCENARIOS,
        get_workload_scenario,
        run_workload,
    )

    if args.workload_command == "list":
        print("workload scenarios:")
        for name, description in WORKLOAD_SCENARIOS.describe():
            print(f"  {name:<20} {description}")
        return 0

    try:
        scenario = get_workload_scenario(args.scenario)
        workload = scenario.build(args.seed)
        report = run_workload(
            workload, args.steps,
            engine=args.engine, backend=args.backend, jobs=args.jobs,
        )
    except (ValueError, FaultError) as exc:
        print(str(exc), file=sys.stderr)
        return 2 if isinstance(exc, ValueError) else 1
    summary = report.summary()
    print(f"workload run: scenario {scenario.name!r} on "
          f"n={scenario.dimension} cube, backend {report.backend}, "
          f"seed {args.seed}")
    print(f"  steps             : {report.num_steps}")
    print(f"  makespan          : {report.makespan:.6g}")
    print(f"  step time mean/max: {summary['step_time_mean']:.6g} / "
          f"{summary['step_time_max']:.6g}")
    print(f"  critical path     : compute "
          f"{summary['critical_compute_time']:.6g}, comm "
          f"{summary['critical_comm_time']:.6g}")
    if summary["degraded_steps"]:
        print(f"  degraded steps    : {summary['degraded_steps']}")
    for step in report.steps:
        cp = "->".join(step.critical_path.phases)
        line = (f"  step {step.step}: duration {step.duration:.6g}, "
                f"{len(step.phases)} phases")
        if step.link_utilization.links_used:
            line += f", link util max {step.link_utilization.max:.1%}"
        ratio = step.stragglers.ratio
        if ratio == ratio:  # not NaN
            line += f", straggler ratio {ratio:.3f}"
        if step.degraded:
            degraded = [p.name for p in step.phases if p.degraded]
            line += f", degraded: {', '.join(degraded)}"
        print(line)
        print(f"    critical: {cp}")
    if args.report_json:
        payload = json.dumps(report.to_dict(), indent=2)
        if args.report_json == "-":
            print(payload)
        else:
            with open(args.report_json, "w") as f:
                f.write(payload + "\n")
            print(f"workload report written to {args.report_json}")
    _write_metrics(
        args,
        scenario=scenario.name,
        seed=args.seed,
        workload=report.to_dict(),
    )
    return 0


def _run_reduction_command(args: argparse.Namespace) -> int:
    """Run the reduce / allreduce / all-broadcast subcommands."""
    cube = _build_topology(args)
    port_model = _PORT_CHOICES[args.ports]
    machine: MachineParams | None = IPSC_D7 if args.ipsc else None
    try:
        if args.command == "reduce":
            result = reduce(
                cube, args.root,
                message_elems=args.message, packet_elems=args.packet,
                port_model=port_model, machine=machine,
                run_event_sim=args.ipsc, engine=args.engine,
                algorithm=args.algorithm,
            )
        elif args.command == "allreduce":
            result = allreduce(
                cube,
                message_elems=args.message, packet_elems=args.packet,
                port_model=port_model, machine=machine,
                run_event_sim=args.ipsc, engine=args.engine,
                root=args.root,
                reduce_algorithm=args.reduce_algorithm,
                broadcast_algorithm=args.broadcast_algorithm,
            )
        else:  # all-broadcast
            result = all_broadcast(
                cube, message_elems=args.message, port_model=port_model,
                machine=machine, run_event_sim=args.ipsc, engine=args.engine,
            )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"{args.command} on {cube} via {result.algorithm}")
    print(f"  port model        : {port_model.describe()}")
    print(f"  routing steps     : {result.cycles}")
    print(f"  simulated time    : {result.time:.6g}"
          + (" s (iPSC/d7, event-driven)" if args.ipsc
             else " (lock-step units)"))
    if args.command == "allreduce":
        print(f"  reduce phase      : {result.reduce.cycles} steps, "
              f"time {result.reduce.time:.6g}")
        print(f"  broadcast phase   : {result.broadcast.cycles} steps, "
              f"time {result.broadcast.time:.6g}")
    stats = result.link_stats
    print(f"  packets sent      : {sum(stats.packets.values())}")
    print(f"  elements sent     : {stats.total_elems()}")
    print(f"  busiest edge      : {stats.max_edge_elems()} elements")
    metrics = result.metrics
    if metrics and metrics.get("phases"):
        phases = ", ".join(
            f"{name} {secs * 1e3:.2f}ms"
            for name, secs in metrics["phases"].items()
        )
        print(f"  phase timings     : {phases}")
    _write_metrics(args, collective=metrics)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    log_target = getattr(args, "log_json", None)
    if log_target:
        configure_logging(log_target)
    try:
        return _dispatch(args)
    finally:
        if log_target:
            configure_logging(None)


def _dispatch(args: argparse.Namespace) -> int:
    # table/figure/sweep runners reach the engines through many layers;
    # the environment default is the documented channel for them (the
    # sweep executor re-exports it to its workers).
    if getattr(args, "engine", None) and args.command in (
        "table", "figure", "sweep"
    ):
        os.environ["REPRO_ENGINE"] = args.engine

    if args.command == "table":
        from repro import experiments

        runner = getattr(experiments, f"run_table{args.number}")
        print(runner(jobs=args.jobs, cache_dir=args.cache_dir).render())
        _write_metrics(args)
        return 0

    if args.command == "figure":
        from repro import experiments

        runner = getattr(experiments, f"run_fig{args.number}")
        print(runner(jobs=args.jobs, cache_dir=args.cache_dir).render())
        _write_metrics(args)
        return 0

    if args.command == "sweep":
        return _run_sweep_command(args)

    if args.command == "service":
        return _run_service_command(args)

    if args.command == "workload":
        return _run_workload_command(args)

    if args.command in ("reduce", "allreduce", "all-broadcast"):
        return _run_reduction_command(args)

    cube = _build_topology(args)
    port_model = _PORT_CHOICES[args.ports]
    machine: MachineParams | None = IPSC_D7 if args.ipsc else None
    faults = None
    if args.dead_links or args.dead_nodes:
        faults = FaultPlan(
            dead_links=[_parse_dead_link(s) for s in args.dead_links],
            dead_nodes=args.dead_nodes,
        )
    want_trace = bool(args.trace_jsonl or args.trace_chrome)
    if args.backend != "runtime":
        if args.on_fault == "repair":
            print("--on-fault repair requires --backend runtime",
                  file=sys.stderr)
            return 2
        if want_trace:
            print("--trace-jsonl/--trace-chrome require --backend runtime",
                  file=sys.stderr)
            return 2
        if args.workers is not None:
            print("--workers requires --backend runtime", file=sys.stderr)
            return 2
    op = broadcast if args.command == "broadcast" else scatter
    prof_ctx = profiled() if args.profile else nullcontext()
    try:
        with prof_ctx as prof:
            result = op(
                cube,
                args.source,
                args.algorithm,
                message_elems=args.message,
                packet_elems=args.packet,
                port_model=port_model,
                machine=machine,
                run_event_sim=args.ipsc,
                faults=faults,
                on_fault=args.on_fault,
                backend=args.backend,
                trace=want_trace,
                engine=args.engine,
                workers=args.workers,
                start_method=args.start_method,
            )
    except FaultError as exc:
        print(f"fault: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    profile = profile_schedule(cube, result.schedule, source=args.source)
    print(f"{args.command} on {cube} via {result.algorithm}")
    print(f"  port model        : {port_model.describe()}")
    print(f"  backend           : {args.backend}")
    if faults is not None:
        print(f"  faults            : {len(faults.dead_links)} links, "
              f"{len(faults.dead_nodes)} nodes dead")
        if result.undelivered_nodes:
            print(f"  unreachable nodes : {sorted(result.undelivered_nodes)}")
    print(f"  routing steps     : {result.cycles}")
    if args.backend == "runtime":
        unit = " s (iPSC/d7)" if args.ipsc else " (unit-cost)"
        print(f"  runtime time      : {result.async_.time:.6g}{unit}")
        repair_rounds = getattr(result.async_, "repair_rounds", 0)
        if repair_rounds:
            print(f"  repair rounds     : {repair_rounds}")
        sharding = getattr(result.async_, "sharding", None)
        if sharding is not None:
            print(f"  shard workers     : {sharding.workers} "
                  f"({sharding.start_method}), {sharding.rounds} clock "
                  f"rounds, {sharding.cross_records} cross packets in "
                  f"{sharding.cross_frames} frames "
                  f"({sharding.aggregation_ratio:.2f}x aggregation)")
        rtrace = getattr(result.async_, "trace", None)
        shard_traces = getattr(result.async_, "shard_traces", None)
        if rtrace is not None:
            if args.trace_jsonl:
                path = rtrace.write_jsonl(args.trace_jsonl)
                print(f"  trace (jsonl)     : {path} ({len(rtrace)} events)")
            if args.trace_chrome:
                if shard_traces is not None:
                    path = write_shard_chrome(shard_traces, args.trace_chrome)
                    print(f"  trace (chrome)    : {path} ({len(rtrace)} "
                          f"events, one lane per shard)")
                else:
                    path = rtrace.write_chrome(args.trace_chrome)
                    print(f"  trace (chrome)    : {path} "
                          f"({len(rtrace)} events)")
    else:
        print(f"  simulated time    : {result.time:.6g}"
              + (" s (iPSC/d7, event-driven)" if args.ipsc
                 else " (lock-step units)"))
    print(f"  packets sent      : {profile.transfers}")
    print(f"  busiest edge      : {result.link_stats.max_edge_elems()} elements")
    print(f"  edge utilization  : {profile.edge_utilization:.1%}")
    print(f"  source port skew  : {profile.balance_ratio():.2f}x")
    if result.metrics:
        phases = ", ".join(
            f"{name} {secs * 1e3:.2f}ms"
            for name, secs in result.metrics["phases"].items()
        )
        print(f"  phase timings     : {phases}")
    if args.profile:
        print()
        print(prof.text(limit=20))
    _write_metrics(args, collective=result.metrics)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
