"""High-level collective operations on a simulated topology.

Each function generates the requested routing schedule, runs it on the
lock-step engine (validating it against the port model and checking
complete delivery), optionally times it on the event-driven engine, and
returns a :class:`~repro.collectives.result.CollectiveResult`.

Every rooted collective accepts any :class:`~repro.topology.Topology`;
``algorithm=None`` resolves per topology (hypercube defaults below,
``"ring"`` — the ring-decomposition spanning tree — on the torus).

Algorithms (hypercube):

============= ========================================================
broadcast     ``"sbt"``, ``"msbt"``, ``"tcbt"``, ``"hp"``,
              ``"hp-centered"``, ``"hp-dual"`` (the §3.4 variations)
scatter       ``"sbt"``, ``"bst"``, ``"tcbt"``
gather        same as scatter (reversed schedules)
reduce        ``"sbt"``; ``allreduce`` composes reduce + broadcast
all_broadcast ``"dimension-exchange"`` (= allgather)
============= ========================================================

Algorithms (torus, k-ary n-cube): ``"ring"`` for the rooted ops,
the Jung–Sakho ring-circulation ``"ring"`` schedule for
``all_broadcast``.
"""

from __future__ import annotations

from repro.cache import cached_tree
from repro.collectives.result import AllreduceResult, CollectiveResult
from repro.obs.runs import RunCollector
from repro.routing import (
    all_broadcast_initial_holdings,
    all_broadcast_schedule,
    allgather_initial_holdings,
    allgather_schedule,
    alltoall_initial_holdings,
    alltoall_personalized_schedule,
    bst_scatter_schedule,
    dual_hp_broadcast_schedule,
    fault_tolerant_broadcast_schedule,
    fault_tolerant_scatter_schedule,
    gather_from_scatter,
    msbt_broadcast_schedule,
    reduce_initial_holdings,
    sbt_broadcast_schedule,
    sbt_reduce_schedule,
    sbt_scatter_schedule,
    tree_broadcast_schedule,
    tree_reduce_initial_holdings,
    tree_reduce_schedule,
    tree_scatter_schedule,
)
from repro.routing.common import MSG
from repro.runtime.actors import run_collective
from repro.runtime.rules import (
    RUNTIME_BROADCAST_ALGORITHMS,
    RUNTIME_SCATTER_ALGORITHMS,
)
from repro.sim.dispatch import get_engine
from repro.sim.faults import DegradedResult, FaultError, FaultPlan
from repro.sim.machine import MachineParams
from repro.sim.ports import PortModel
from repro.sim.schedule import Chunk, Schedule
from repro.sim.synchronous import run_synchronous
from repro.topology.base import Topology
from repro.topology.hypercube import Hypercube
from repro.topology.torus import Torus
from repro.trees.hamiltonian import HamiltonianPathTree
from repro.trees.hp_variants import CenteredHamiltonianPathTree
from repro.trees.ring import RingDecompositionTree
from repro.trees.tcbt import TwoRootedCompleteBinaryTree

__all__ = [
    "broadcast",
    "scatter",
    "gather",
    "reduce",
    "allreduce",
    "allgather",
    "all_broadcast",
    "alltoall_personalized",
    "collective_schedule",
    "check_delivery",
    "default_algorithm",
]

BROADCAST_ALGORITHMS = (
    "sbt", "msbt", "tcbt", "hp", "hp-centered", "hp-dual", "ring",
)
SCATTER_ALGORITHMS = ("sbt", "bst", "tcbt", "ring")
REDUCE_ALGORITHMS = ("sbt", "ring")

#: rooted/rootless collective kinds `collective_schedule` can build
SCHEDULE_OPS = (
    "broadcast", "scatter", "gather", "reduce", "allgather", "alltoall",
    "all_broadcast",
)

#: the ops within SCHEDULE_OPS whose ``source`` names a root node
ROOTED_OPS = ("broadcast", "scatter", "gather", "reduce")

#: default algorithm per collective kind on the hypercube
DEFAULT_ALGORITHMS = {
    "broadcast": "msbt",
    "scatter": "bst",
    "gather": "bst",
    "reduce": "sbt",
    "allgather": "dimension-exchange",
    "alltoall": "dimension-exchange",
    "all_broadcast": "dimension-exchange",
}

#: default algorithm per collective kind on the torus
_TORUS_DEFAULTS = {
    "broadcast": "ring",
    "scatter": "ring",
    "gather": "ring",
    "reduce": "ring",
    "all_broadcast": "ring",
}


def default_algorithm(cube: Topology, op: str) -> str:
    """The algorithm ``op`` resolves to on ``cube`` when none is given."""
    if op not in SCHEDULE_OPS:
        raise ValueError(f"op must be one of {SCHEDULE_OPS}, got {op!r}")
    if isinstance(cube, Hypercube):
        return DEFAULT_ALGORITHMS[op]
    if isinstance(cube, Torus):
        try:
            return _TORUS_DEFAULTS[op]
        except KeyError:
            raise ValueError(
                f"{op!r} is not implemented on the torus"
            ) from None
    raise TypeError(
        f"no default algorithm for topology {type(cube).__name__}"
    )


def _resolve_algorithm(cube: Topology, op: str, algorithm: str | None) -> str:
    return default_algorithm(cube, op) if algorithm is None else algorithm


def _ring_tree(cube: Topology, root: int) -> RingDecompositionTree:
    """The ring-decomposition tree rooted at ``root`` on any topology.

    ``RingDecompositionTree`` requires a torus host; a hypercube is
    served by hosting the tree on the port-identical ``Torus(n, 2)``
    (same edges, same port numbering), so the resulting schedules are
    valid hypercube schedules.
    """
    if isinstance(cube, Torus):
        host = cube
    elif isinstance(cube, Hypercube):
        host = Torus(cube.dimension, 2)
    else:
        raise TypeError(
            f"no ring decomposition for topology {type(cube).__name__}"
        )
    return cached_tree(RingDecompositionTree, host, root)


def _check_torus_supported(
    cube: Topology,
    op: str,
    backend: str = "sim",
    faults: FaultPlan | None = None,
) -> None:
    """Reject backend/fault combinations the torus paths don't implement."""
    if isinstance(cube, Hypercube):
        return
    if backend != "sim":
        raise ValueError(
            f"backend {backend!r} supports the hypercube only; "
            f"use backend='sim' for {type(cube).__name__}"
        )
    if faults:
        raise ValueError(
            f"fault-tolerant {op} is implemented on the hypercube only"
        )

#: execution backends: ``"sim"`` replays a centrally generated schedule
#: through the engines; ``"runtime"`` executes the operation on the
#: actor-based message-passing runtime (:mod:`repro.runtime`), where
#: every node derives its sends locally.
BACKENDS = ("sim", "runtime")


def _runtime_collective(
    cube: Hypercube,
    op: str,
    algorithm: str,
    source: int,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    machine: MachineParams | None,
    faults: FaultPlan | None,
    on_fault: str,
    subtree_order: str = "depth_first",
    trace: bool = False,
    workers: int | None = None,
    start_method: str | None = None,
) -> CollectiveResult:
    """Execute on the actor runtime, packaged as a CollectiveResult.

    The central schedule is still generated — it documents the
    operation and drives the lock-step validation — but the *timed*
    execution (``result.async_``, hence ``result.time``) comes from
    :func:`repro.runtime.run_collective`, and under faults the runtime
    handles degradation itself (including the ``"repair"`` mode the
    schedule replay does not offer).
    """
    allowed = (
        RUNTIME_BROADCAST_ALGORITHMS
        if op == "broadcast"
        else RUNTIME_SCATTER_ALGORITHMS
    )
    if algorithm not in allowed:
        raise ValueError(
            f"the runtime backend implements {op} for {allowed}, "
            f"got {algorithm!r}"
        )
    collector = RunCollector(op, algorithm, backend="runtime", topology=cube.kind)
    with collector.phase("runtime"):
        rt = run_collective(
            cube, op, algorithm, source, message_elems, packet_elems,
            port_model, machine=machine, subtree_order=subtree_order,
            faults=faults, on_fault=on_fault, trace=trace,
            workers=workers, start_method=start_method,
        )
    with collector.phase("schedule"):
        if op == "broadcast":
            sched = (
                sbt_broadcast_schedule
                if algorithm == "sbt"
                else msbt_broadcast_schedule
            )(cube, source, message_elems, packet_elems, port_model)
        else:
            sched = _scatter_schedule(
                cube, source, algorithm, message_elems, packet_elems,
                port_model, subtree_order,
            )
    initial = {source: set(sched.chunk_sizes)}
    with collector.phase("sync"):
        sync = run_synchronous(
            cube, sched, port_model, initial, machine,
            faults=faults, on_fault="report" if faults else "raise",
        )
    undelivered = (
        frozenset(rt.undelivered_nodes)
        if isinstance(rt, DegradedResult)
        else frozenset()
    )
    result = CollectiveResult(
        schedule=sched,
        sync=sync,
        async_=rt,
        faults=faults,
        undelivered_nodes=undelivered,
    )
    collector.finalize(result)
    return result


def _run(
    cube: Topology,
    schedule: Schedule,
    port_model: PortModel,
    initial: dict[int, set[Chunk]],
    machine: MachineParams | None,
    run_event_sim: bool,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
    undelivered: frozenset[int] = frozenset(),
    collector: RunCollector | None = None,
    engine: str | None = None,
) -> CollectiveResult:
    collector = collector or RunCollector("-", schedule.algorithm)
    with collector.phase("sync"):
        sync = run_synchronous(
            cube, schedule, port_model, initial, machine,
            faults=faults, on_fault=on_fault,
        )
    if run_event_sim:
        run_async = get_engine(engine)
        with collector.phase("async"):
            async_ = run_async(
                cube, schedule, port_model, initial, machine,
                faults=faults, on_fault=on_fault,
            )
    else:
        async_ = None
    return CollectiveResult(
        schedule=schedule,
        sync=sync,
        async_=async_,
        faults=faults,
        undelivered_nodes=undelivered,
    )


def broadcast(
    cube: Topology,
    source: int,
    algorithm: str | None = None,
    message_elems: int = 1,
    packet_elems: int | None = None,
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    machine: MachineParams | None = None,
    run_event_sim: bool = False,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
    backend: str = "sim",
    trace: bool = False,
    engine: str | None = None,
    workers: int | None = None,
    start_method: str | None = None,
) -> CollectiveResult:
    """Broadcast ``message_elems`` from ``source`` to every other node.

    Args:
        cube: the host topology (hypercube or torus).
        source: broadcasting node.
        algorithm: ``"sbt"``, ``"msbt"``, ``"tcbt"``, ``"hp"``,
            ``"hp-centered"`` or ``"hp-dual"`` on the hypercube;
            ``"ring"`` (ring-decomposition spanning tree) on either
            topology.  ``None`` (default) resolves per topology:
            ``"msbt"`` on the hypercube, ``"ring"`` on the torus.
        message_elems: total message size ``M``.
        packet_elems: maximum packet size ``B`` (default: ``M``, one
            packet).
        port_model: port model to generate for and validate against.
        machine: cost parameters (default unit costs).
        run_event_sim: also run the event-driven engine (slower but
            models start-ups/overlap; its time becomes ``result.time``).
        faults: dead links/nodes to route around.  Link-only fault sets
            keep the MSBT pipelining (the degraded MSBT schedule);
            anything else falls back to a fault-avoiding BFS survivor
            tree.  The engines run under the plan too, so the returned
            result is proof the schedule avoids every fault.
        on_fault: ``"raise"`` (default) propagates a
            :class:`~repro.sim.faults.FaultError` when the faults
            disconnect some node from the source; ``"report"`` serves
            the source's surviving component and lists the rest in
            ``result.undelivered_nodes``.  The runtime backend also
            accepts ``"repair"`` (timeout-driven survivor-tree
            recovery).
        backend: ``"sim"`` (default) replays the central schedule on
            the engines; ``"runtime"`` executes on the actor runtime
            (``"sbt"``/``"msbt"`` only) — the runtime result becomes
            ``result.async_``, so ``run_event_sim`` is implied.
        trace: record a per-packet :class:`repro.runtime.RuntimeTrace`
            on ``result.async_.trace`` (runtime backend only).
        engine: event-engine implementation for ``run_event_sim``
            (see :data:`repro.sim.ENGINES`; default: ``REPRO_ENGINE``
            or ``"indexed"``; ``"vectorized"`` is bit-identical and
            much faster on large cubes).
        workers: shard the runtime execution across this many worker
            processes (a power of two; ``0`` auto-sizes to the CPU
            count).  Runtime backend only; results stay bit-identical
            to the single-process runtime.
        start_method: worker launch mode for ``workers > 1`` (see
            :data:`repro.runtime.START_METHODS`; default ``"fork"`` or
            ``REPRO_START_METHOD``).
    """
    packet_elems = message_elems if packet_elems is None else packet_elems
    algorithm = _resolve_algorithm(cube, "broadcast", algorithm)
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    _check_torus_supported(cube, "broadcast", backend, faults)
    if backend != "runtime" and workers is not None:
        raise ValueError(
            f"workers= requires backend='runtime', got backend={backend!r}"
        )
    if backend == "runtime":
        return _runtime_collective(
            cube, "broadcast", algorithm, source, message_elems,
            packet_elems, port_model, machine, faults, on_fault,
            trace=trace, workers=workers, start_method=start_method,
        )
    if faults:
        return _broadcast_with_faults(
            cube, source, algorithm, message_elems, packet_elems,
            port_model, machine, run_event_sim, faults, on_fault,
            engine=engine,
        )
    collector = RunCollector("broadcast", algorithm, topology=cube.kind)
    with collector.phase("schedule"):
        sched = _broadcast_schedule(
            cube, source, algorithm, message_elems, packet_elems, port_model
        )
    initial = {source: set(sched.chunk_sizes)}
    result = _run(
        cube, sched, port_model, initial, machine, run_event_sim,
        collector=collector, engine=engine,
    )
    _check_broadcast_delivery(cube, result)
    collector.finalize(result)
    return result


def _broadcast_schedule(
    cube: Topology,
    source: int,
    algorithm: str,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> Schedule:
    if algorithm == "ring":
        tree = _ring_tree(cube, source)
        return tree_broadcast_schedule(tree, message_elems, packet_elems, port_model)
    if not isinstance(cube, Hypercube):
        raise ValueError(
            f"broadcast algorithm {algorithm!r} requires a hypercube; "
            f"use 'ring' on {type(cube).__name__}"
        )
    if algorithm == "sbt":
        return sbt_broadcast_schedule(
            cube, source, message_elems, packet_elems, port_model
        )
    if algorithm == "msbt":
        return msbt_broadcast_schedule(
            cube, source, message_elems, packet_elems, port_model
        )
    if algorithm == "tcbt":
        tree = cached_tree(TwoRootedCompleteBinaryTree, cube, source)
        return tree_broadcast_schedule(tree, message_elems, packet_elems, port_model)
    if algorithm == "hp":
        tree = cached_tree(HamiltonianPathTree, cube, source)
        return tree_broadcast_schedule(tree, message_elems, packet_elems, port_model)
    if algorithm == "hp-centered":
        tree = cached_tree(CenteredHamiltonianPathTree, cube, source)
        return tree_broadcast_schedule(tree, message_elems, packet_elems, port_model)
    if algorithm == "hp-dual":
        return dual_hp_broadcast_schedule(
            cube, source, message_elems, packet_elems, port_model
        )
    raise ValueError(
        f"unknown broadcast algorithm {algorithm!r}; pick one of {BROADCAST_ALGORITHMS}"
    )


def _broadcast_with_faults(
    cube: Hypercube,
    source: int,
    algorithm: str,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    machine: MachineParams | None,
    run_event_sim: bool,
    faults: FaultPlan,
    on_fault: str,
    engine: str | None = None,
) -> CollectiveResult:
    """Fault-routed broadcast: degraded MSBT when possible, else FAST.

    The requested ``algorithm`` is honoured only as far as faults
    allow: ``"msbt"`` with link-only faults keeps the edge-disjoint
    pipelining; every other combination falls back to the survivor
    tree (whose schedule the requested algorithm cannot improve on
    once its structure is broken).
    """
    if algorithm not in BROADCAST_ALGORITHMS:
        raise ValueError(
            f"unknown broadcast algorithm {algorithm!r}; pick one of {BROADCAST_ALGORITHMS}"
        )
    collector = RunCollector("broadcast", algorithm, topology=cube.kind)
    partial = on_fault == "report"
    covered = frozenset(cube.nodes())
    sched: Schedule | None = None
    with collector.phase("schedule"):
        if algorithm == "msbt" and not faults.dead_nodes:
            try:
                sched = msbt_broadcast_schedule(
                    cube, source, message_elems, packet_elems, port_model,
                    dead_links=tuple(sorted(faults.dead_links)),
                )
            except FaultError:
                if not partial:
                    raise
        if sched is None:
            sched, tree = fault_tolerant_broadcast_schedule(
                cube, source, message_elems, packet_elems, port_model,
                faults, partial=partial,
            )
            covered = tree.covered
    initial = {source: set(sched.chunk_sizes)}
    result = _run(
        cube, sched, port_model, initial, machine, run_event_sim,
        faults=faults, on_fault=on_fault,
        undelivered=frozenset(cube.nodes()) - covered,
        collector=collector, engine=engine,
    )
    _check_broadcast_delivery(cube, result, covered=covered)
    collector.finalize(result)
    return result


def scatter(
    cube: Topology,
    source: int,
    algorithm: str | None = None,
    message_elems: int = 1,
    packet_elems: int | None = None,
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    machine: MachineParams | None = None,
    run_event_sim: bool = False,
    subtree_order: str = "depth_first",
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
    backend: str = "sim",
    trace: bool = False,
    engine: str | None = None,
    workers: int | None = None,
    start_method: str | None = None,
) -> CollectiveResult:
    """Send a distinct ``message_elems`` message from ``source`` to each node.

    Args:
        cube: the host topology (hypercube or torus).
        source: distributing node.
        algorithm: ``"sbt"``, ``"bst"`` or ``"tcbt"`` on the
            hypercube; ``"ring"`` on either topology.  ``None``
            (default) resolves per topology: ``"bst"`` on the
            hypercube, ``"ring"`` on the torus.
        message_elems: per-destination message size ``M``.
        packet_elems: maximum packet size ``B`` (default: ``M``).
        port_model: port model to generate for and validate against.
        machine: cost parameters (default unit costs).
        run_event_sim: also run the event-driven engine.
        subtree_order: BST in-subtree transmission order (§5.2).
        faults: dead links/nodes to route around; any non-empty plan
            replaces ``algorithm`` with the fault-avoiding survivor
            tree scatter (destinations restricted to reachable nodes).
        on_fault: ``"raise"`` (default) propagates a
            :class:`~repro.sim.faults.FaultError` on a disconnected
            survivor cube; ``"report"`` scatters to the source's
            component and lists the rest in
            ``result.undelivered_nodes``.  The runtime backend also
            accepts ``"repair"``.
        backend: ``"sim"`` (default) replays the central schedule on
            the engines; ``"runtime"`` executes on the actor runtime
            (``"sbt"``/``"bst"`` only).
        trace: record a per-packet :class:`repro.runtime.RuntimeTrace`
            on ``result.async_.trace`` (runtime backend only).
        engine: event-engine implementation for ``run_event_sim``
            (see :data:`repro.sim.ENGINES`).
        workers: shard the runtime execution across this many worker
            processes (a power of two; ``0`` auto-sizes to the CPU
            count).  Runtime backend only; results stay bit-identical
            to the single-process runtime.
        start_method: worker launch mode for ``workers > 1`` (see
            :data:`repro.runtime.START_METHODS`; default ``"fork"`` or
            ``REPRO_START_METHOD``).
    """
    packet_elems = message_elems if packet_elems is None else packet_elems
    algorithm = _resolve_algorithm(cube, "scatter", algorithm)
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    _check_torus_supported(cube, "scatter", backend, faults)
    if backend != "runtime" and workers is not None:
        raise ValueError(
            f"workers= requires backend='runtime', got backend={backend!r}"
        )
    if backend == "runtime":
        return _runtime_collective(
            cube, "scatter", algorithm, source, message_elems,
            packet_elems, port_model, machine, faults, on_fault,
            subtree_order=subtree_order, trace=trace,
            workers=workers, start_method=start_method,
        )
    collector = RunCollector("scatter", algorithm, topology=cube.kind)
    if faults:
        if algorithm not in SCATTER_ALGORITHMS:
            raise ValueError(
                f"unknown scatter algorithm {algorithm!r}; pick one of {SCATTER_ALGORITHMS}"
            )
        partial = on_fault == "report"
        with collector.phase("schedule"):
            sched, tree = fault_tolerant_scatter_schedule(
                cube, source, message_elems, packet_elems, port_model,
                faults, partial=partial,
            )
        initial = {source: set(sched.chunk_sizes)}
        result = _run(
            cube, sched, port_model, initial, machine, run_event_sim,
            faults=faults, on_fault=on_fault,
            undelivered=frozenset(cube.nodes()) - tree.covered,
            collector=collector, engine=engine,
        )
        _check_scatter_delivery(cube, source, result, covered=tree.covered)
        collector.finalize(result)
        return result
    with collector.phase("schedule"):
        sched = _scatter_schedule(
            cube, source, algorithm, message_elems, packet_elems, port_model, subtree_order
        )
    initial = {source: set(sched.chunk_sizes)}
    result = _run(
        cube, sched, port_model, initial, machine, run_event_sim,
        collector=collector, engine=engine,
    )
    _check_scatter_delivery(cube, source, result)
    collector.finalize(result)
    return result


def _scatter_schedule(
    cube: Topology,
    source: int,
    algorithm: str,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
    subtree_order: str = "depth_first",
) -> Schedule:
    if algorithm == "ring":
        tree = _ring_tree(cube, source)
        return tree_scatter_schedule(tree, message_elems, packet_elems, port_model)
    if not isinstance(cube, Hypercube):
        raise ValueError(
            f"scatter algorithm {algorithm!r} requires a hypercube; "
            f"use 'ring' on {type(cube).__name__}"
        )
    if algorithm == "sbt":
        return sbt_scatter_schedule(
            cube, source, message_elems, packet_elems, port_model
        )
    if algorithm == "bst":
        return bst_scatter_schedule(
            cube, source, message_elems, packet_elems, port_model, subtree_order
        )
    if algorithm == "tcbt":
        tree = cached_tree(TwoRootedCompleteBinaryTree, cube, source)
        return tree_scatter_schedule(tree, message_elems, packet_elems, port_model)
    raise ValueError(
        f"unknown scatter algorithm {algorithm!r}; pick one of {SCATTER_ALGORITHMS}"
    )


def gather(
    cube: Topology,
    root: int,
    algorithm: str | None = None,
    message_elems: int = 1,
    packet_elems: int | None = None,
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    machine: MachineParams | None = None,
    run_event_sim: bool = False,
    engine: str | None = None,
) -> CollectiveResult:
    """Collect a distinct ``message_elems`` message from every node at ``root``.

    The schedule is the reversed scatter schedule of the same
    algorithm, hence identical step counts with transposed link loads.
    ``algorithm=None`` resolves per topology (``"bst"`` on the
    hypercube, ``"ring"`` on the torus).
    """
    packet_elems = message_elems if packet_elems is None else packet_elems
    algorithm = _resolve_algorithm(cube, "gather", algorithm)
    collector = RunCollector("gather", algorithm, topology=cube.kind)
    with collector.phase("schedule"):
        sched = gather_from_scatter(
            _scatter_schedule(cube, root, algorithm, message_elems, packet_elems, port_model)
        )
    initial = {
        v: {c for c in sched.chunk_sizes if c[0] == MSG and c[1] == v}
        for v in cube.nodes()
    }
    result = _run(
        cube, sched, port_model, initial, machine, run_event_sim,
        collector=collector, engine=engine,
    )
    if not result.sync.holdings[root] >= set(sched.chunk_sizes):
        raise AssertionError("gather failed to collect every message at the root")
    collector.finalize(result)
    return result


def reduce(
    cube: Topology,
    root: int,
    message_elems: int = 1,
    packet_elems: int | None = None,
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    machine: MachineParams | None = None,
    run_event_sim: bool = False,
    engine: str | None = None,
    algorithm: str | None = None,
) -> CollectiveResult:
    """Combine an ``message_elems`` operand from every node at ``root``.

    ``algorithm=None`` resolves per topology: ``"sbt"`` (the reversed
    spanning binomial tree, §3 of the paper) on the hypercube,
    ``"ring"`` (the reversed ring-decomposition tree) on the torus.
    """
    packet_elems = message_elems if packet_elems is None else packet_elems
    algorithm = _resolve_algorithm(cube, "reduce", algorithm)
    collector = RunCollector("reduce", algorithm, topology=cube.kind)
    with collector.phase("schedule"):
        sched, initial = _reduce_schedule(
            cube, root, algorithm, message_elems, packet_elems, port_model
        )
    result = _run(
        cube, sched, port_model, initial, machine, run_event_sim,
        collector=collector, engine=engine,
    )
    collector.finalize(result)
    return result


def _reduce_schedule(
    cube: Topology,
    root: int,
    algorithm: str,
    message_elems: int,
    packet_elems: int,
    port_model: PortModel,
) -> tuple[Schedule, dict[int, set[Chunk]]]:
    if algorithm == "ring":
        tree = _ring_tree(cube, root)
        sched = tree_reduce_schedule(
            tree, message_elems, packet_elems, port_model
        )
        return sched, tree_reduce_initial_holdings(
            tree, message_elems, packet_elems
        )
    if algorithm != "sbt" or not isinstance(cube, Hypercube):
        raise ValueError(
            f"reduce implements {REDUCE_ALGORITHMS}, got {algorithm!r} "
            f"on {type(cube).__name__}"
        )
    sched = sbt_reduce_schedule(
        cube, root, message_elems, packet_elems, port_model
    )
    return sched, reduce_initial_holdings(cube, message_elems, packet_elems)


def allreduce(
    cube: Topology,
    message_elems: int = 1,
    packet_elems: int | None = None,
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    machine: MachineParams | None = None,
    run_event_sim: bool = False,
    broadcast_algorithm: str | None = None,
    engine: str | None = None,
    root: int = 0,
    reduce_algorithm: str | None = None,
) -> AllreduceResult:
    """Reduce to ``root`` then broadcast the result back (allreduce).

    The classic two-phase composition over the paper's trees: the
    reduce is the reverse broadcast (SBT on the hypercube, the
    ring-decomposition tree on the torus), then the combined operand
    is broadcast from the same root.  ``reduce_algorithm`` /
    ``broadcast_algorithm`` default per topology (``"sbt"`` /
    ``"sbt"`` on the hypercube, ``"ring"`` / ``"ring"`` on the
    torus).  Returns an
    :class:`~repro.collectives.result.AllreduceResult` carrying both
    phase results, the summed cost view, and one uniform ``metrics``
    dict (``op="allreduce"``); it unpacks as ``(phase1, phase2)`` for
    callers that report the phases separately.
    """
    reduce_algorithm = _resolve_algorithm(cube, "reduce", reduce_algorithm)
    if broadcast_algorithm is None:
        broadcast_algorithm = (
            "sbt" if isinstance(cube, Hypercube)
            else default_algorithm(cube, "broadcast")
        )
    collector = RunCollector(
        "allreduce", f"{reduce_algorithm}+{broadcast_algorithm}",
        topology=cube.kind,
    )
    with collector.phase("reduce"):
        phase1 = reduce(
            cube, root, message_elems, packet_elems, port_model, machine,
            run_event_sim, engine=engine, algorithm=reduce_algorithm,
        )
    with collector.phase("broadcast"):
        phase2 = broadcast(
            cube, root, broadcast_algorithm, message_elems, packet_elems,
            port_model, machine, run_event_sim, engine=engine,
        )
    result = AllreduceResult(reduce=phase1, broadcast=phase2)
    collector.finalize(result)
    return result


def allgather(
    cube: Hypercube,
    message_elems: int = 1,
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    machine: MachineParams | None = None,
    run_event_sim: bool = False,
    engine: str | None = None,
) -> CollectiveResult:
    """All-to-all broadcast: every node ends holding every contribution."""
    collector = RunCollector(
        "allgather", "dimension-exchange", topology=cube.kind
    )
    with collector.phase("schedule"):
        sched = allgather_schedule(cube, message_elems, port_model)
    initial = allgather_initial_holdings(cube)
    result = _run(
        cube, sched, port_model, initial, machine, run_event_sim,
        collector=collector, engine=engine,
    )
    for v in cube.nodes():
        if len(result.sync.holdings[v]) != cube.num_nodes:
            raise AssertionError(f"allgather incomplete at node {v}")
    collector.finalize(result)
    return result


def all_broadcast(
    cube: Topology,
    message_elems: int = 1,
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    machine: MachineParams | None = None,
    run_event_sim: bool = False,
    engine: str | None = None,
) -> CollectiveResult:
    """All-to-all broadcast on any topology: every node learns every
    contribution.

    On the hypercube this is the §4 dimension-exchange allgather; on
    the torus it is the Jung–Sakho schedule — ``n`` sequential
    dimension phases, each circulating the accumulated super-chunks
    around the dimension's rings (bidirectionally under the all-port
    model, as arc matchings under half-duplex).
    """
    algorithm = default_algorithm(cube, "all_broadcast")
    collector = RunCollector("all_broadcast", algorithm, topology=cube.kind)
    with collector.phase("schedule"):
        sched = all_broadcast_schedule(cube, message_elems, port_model)
    initial = all_broadcast_initial_holdings(cube)
    result = _run(
        cube, sched, port_model, initial, machine, run_event_sim,
        collector=collector, engine=engine,
    )
    for v in cube.nodes():
        if len(result.sync.holdings[v]) != cube.num_nodes:
            raise AssertionError(f"all-broadcast incomplete at node {v}")
    collector.finalize(result)
    return result


def alltoall_personalized(
    cube: Hypercube,
    message_elems: int = 1,
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    machine: MachineParams | None = None,
    run_event_sim: bool = False,
    algorithm: str = "dimension-exchange",
    engine: str | None = None,
) -> CollectiveResult:
    """Total exchange: node ``i`` sends a distinct message to every ``j``.

    Algorithms: ``"dimension-exchange"`` (log N folding steps) or
    ``"bst"`` — ``N`` translated BSTs running concurrently, the [8]
    extension, which is about ``log N`` times faster in transfer time
    under the all-port model (and requires it).
    """
    collector = RunCollector("alltoall", algorithm, topology=cube.kind)
    with collector.phase("schedule"):
        if algorithm == "dimension-exchange":
            sched = alltoall_personalized_schedule(cube, message_elems, port_model)
        elif algorithm == "bst":
            if port_model is not PortModel.ALL_PORT:
                raise ValueError("the N-BST total exchange requires the all-port model")
            from repro.routing.alltoall import alltoall_bst_schedule

            sched = alltoall_bst_schedule(cube, message_elems)
        else:
            raise ValueError(
                f"unknown total-exchange algorithm {algorithm!r}; "
                "pick 'dimension-exchange' or 'bst'"
            )
    initial = alltoall_initial_holdings(cube)
    result = _run(
        cube, sched, port_model, initial, machine, run_event_sim,
        collector=collector, engine=engine,
    )
    for v in cube.nodes():
        got = {c for c in result.sync.holdings[v] if c[2] == v}
        if len(got) != cube.num_nodes - 1:
            raise AssertionError(f"total exchange incomplete at node {v}")
    collector.finalize(result)
    return result


def collective_schedule(
    cube: Topology,
    op: str,
    algorithm: str | None = None,
    source: int = 0,
    message_elems: int = 1,
    packet_elems: int | None = None,
    port_model: PortModel = PortModel.ONE_PORT_FULL,
    subtree_order: str = "depth_first",
) -> tuple[Schedule, dict[int, set[Chunk]]]:
    """Build the schedule + initial holdings for one collective job.

    The schedule-generation halves of :func:`broadcast`,
    :func:`scatter`, :func:`gather`, :func:`reduce`, :func:`allgather`
    and :func:`alltoall_personalized`, exposed as one entry point that
    does *not* run any engine — the service layer
    (:mod:`repro.service`) and the workload layer
    (:mod:`repro.workloads`) use it to compose many jobs/phases into a
    single merged program before execution.

    Args:
        cube: the host topology (``allgather``/``alltoall`` are
            hypercube-only; use ``all_broadcast`` for the
            topology-generic all-to-all broadcast).
        op: one of ``SCHEDULE_OPS`` (``"broadcast"``, ``"scatter"``,
            ``"gather"``, ``"reduce"``, ``"allgather"``,
            ``"alltoall"``, ``"all_broadcast"``).
        algorithm: algorithm within the op (default per op and
            topology: :func:`default_algorithm`).
        source: root node (rooted ops only; ignored for
            ``allgather``/``alltoall``).
        message_elems: message size ``M`` (per destination for the
            personalized ops).
        packet_elems: maximum packet size ``B`` (default ``M``; the
            rootless ops pack one message per packet regardless).
        port_model: port model the schedule must respect.
        subtree_order: BST in-subtree transmission order (§5.2).

    Returns:
        ``(schedule, initial_holdings)`` ready for any engine.
    """
    if op not in SCHEDULE_OPS:
        raise ValueError(f"op must be one of {SCHEDULE_OPS}, got {op!r}")
    algorithm = _resolve_algorithm(cube, op, algorithm)
    packet_elems = message_elems if packet_elems is None else packet_elems
    if op == "broadcast":
        sched = _broadcast_schedule(
            cube, source, algorithm, message_elems, packet_elems, port_model
        )
        return sched, {source: set(sched.chunk_sizes)}
    if op == "scatter":
        sched = _scatter_schedule(
            cube, source, algorithm, message_elems, packet_elems,
            port_model, subtree_order,
        )
        return sched, {source: set(sched.chunk_sizes)}
    if op == "gather":
        sched = gather_from_scatter(
            _scatter_schedule(
                cube, source, algorithm, message_elems, packet_elems,
                port_model, subtree_order,
            )
        )
        return sched, {
            v: {c for c in sched.chunk_sizes if c[0] == MSG and c[1] == v}
            for v in cube.nodes()
        }
    if op == "reduce":
        return _reduce_schedule(
            cube, source, algorithm, message_elems, packet_elems, port_model
        )
    if op == "all_broadcast":
        return (
            all_broadcast_schedule(cube, message_elems, port_model),
            all_broadcast_initial_holdings(cube),
        )
    if op == "allgather":
        if algorithm != "dimension-exchange":
            raise ValueError(
                f"allgather implements 'dimension-exchange', got {algorithm!r}"
            )
        return (
            allgather_schedule(cube, message_elems, port_model),
            allgather_initial_holdings(cube),
        )
    # op == "alltoall"
    if algorithm == "dimension-exchange":
        sched = alltoall_personalized_schedule(cube, message_elems, port_model)
    elif algorithm == "bst":
        if port_model is not PortModel.ALL_PORT:
            raise ValueError("the N-BST total exchange requires the all-port model")
        from repro.routing.alltoall import alltoall_bst_schedule

        sched = alltoall_bst_schedule(cube, message_elems)
    else:
        raise ValueError(
            f"unknown total-exchange algorithm {algorithm!r}; "
            "pick 'dimension-exchange' or 'bst'"
        )
    return sched, alltoall_initial_holdings(cube)


def check_delivery(
    cube: Topology,
    op: str,
    source: int,
    schedule: Schedule,
    holdings: dict[int, set[Chunk]],
) -> dict[int, set[Chunk]]:
    """Chunks each node should hold after ``op`` but does not.

    Mirrors the per-op delivery assertions of the high-level functions,
    but over a bare holdings map (e.g. one job's
    :func:`repro.sim.multi.untag_holdings` view of a merged service
    run) and reporting instead of raising.  Empty result = complete.
    """
    if op not in SCHEDULE_OPS:
        raise ValueError(f"op must be one of {SCHEDULE_OPS}, got {op!r}")
    missing: dict[int, set[Chunk]] = {}
    chunks = schedule.chunk_sizes
    for v in cube.nodes():
        have = holdings.get(v, set())
        if op == "broadcast":
            want = set(chunks)
        elif op == "scatter":
            if v == source:
                continue
            want = {c for c in chunks if c[1] == v}
        elif op == "gather":
            # only the root has a delivery obligation: every message
            if v != source:
                continue
            want = set(chunks)
        elif op == "reduce":
            # the root must end holding its own operand plus the
            # combined partial each tree child sends in — exactly the
            # chunks of the transfers terminating at the root (on the
            # hypercube SBT these are the ``source ^ 2**j`` partials)
            if v != source:
                continue
            want = {c for c in chunks if c[1] == source}
            for r in schedule.rounds:
                for t in r:
                    if t.dst == source:
                        want.update(t.chunks)
        elif op in ("allgather", "all_broadcast"):
            want = set(chunks)
        else:  # alltoall: every chunk addressed to v (c[2] = destination)
            want = {c for c in chunks if c[2] == v}
        short = want - have
        if short:
            missing[v] = short
    return missing


def _check_broadcast_delivery(
    cube: Topology,
    result: CollectiveResult,
    covered: frozenset[int] | None = None,
) -> None:
    want = set(result.schedule.chunk_sizes)
    nodes = cube.nodes() if covered is None else sorted(covered)
    for v in nodes:
        if not result.sync.holdings[v] >= want:
            raise AssertionError(f"broadcast failed to reach node {v} completely")


def _check_scatter_delivery(
    cube: Topology,
    source: int,
    result: CollectiveResult,
    covered: frozenset[int] | None = None,
) -> None:
    nodes = cube.nodes() if covered is None else sorted(covered)
    for v in nodes:
        if v == source:
            continue
        mine = {c for c in result.schedule.chunk_sizes if c[1] == v}
        if not result.sync.holdings[v] >= mine:
            raise AssertionError(f"scatter failed to deliver node {v}'s message")
