"""Result object returned by the high-level collective API."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import AsyncResult
from repro.sim.schedule import Schedule
from repro.sim.synchronous import SyncResult
from repro.sim.trace import LinkStats

__all__ = ["CollectiveResult"]


@dataclass
class CollectiveResult:
    """Outcome of one simulated collective operation.

    Attributes:
        schedule: the generated routing schedule.
        sync: synchronous (lock-step) execution result — cycle counts
            and validation.
        async_: asynchronous (event-driven) execution result — wall
            clock under the machine model, or ``None`` when the caller
            skipped the event simulation.
    """

    schedule: Schedule
    sync: SyncResult
    async_: AsyncResult | None = None

    @property
    def cycles(self) -> int:
        """Routing steps used (the paper's cycle count)."""
        return self.sync.cycles

    @property
    def time(self) -> float:
        """Simulated completion time.

        The event-driven time when available (it models start-up
        overlap and hardware packetization), else the lock-step time.
        """
        return self.async_.time if self.async_ is not None else self.sync.time

    @property
    def link_stats(self) -> LinkStats:
        """Per-edge traffic of the run."""
        return self.sync.link_stats

    @property
    def algorithm(self) -> str:
        """Generator label of the schedule."""
        return self.schedule.algorithm

    def __repr__(self) -> str:
        return (
            f"CollectiveResult({self.algorithm!r}, cycles={self.cycles}, "
            f"time={self.time:.6g})"
        )
