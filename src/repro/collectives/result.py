"""Result object returned by the high-level collective API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.engine import AsyncResult
from repro.sim.faults import DegradedResult, FaultPlan
from repro.sim.schedule import Schedule
from repro.sim.synchronous import SyncResult
from repro.sim.trace import LinkStats

__all__ = ["AllreduceResult", "CollectiveResult"]


@dataclass
class CollectiveResult:
    """Outcome of one simulated collective operation.

    Attributes:
        schedule: the generated routing schedule.
        sync: synchronous (lock-step) execution result — cycle counts
            and validation.
        async_: asynchronous (event-driven) execution result — wall
            clock under the machine model, or ``None`` when the caller
            skipped the event simulation.
        faults: the fault plan the collective routed around and ran
            under, or ``None`` for a fault-free run.
        undelivered_nodes: nodes the collective could not serve at all
            (dead, or cut off from the source by the faults); empty
            unless the fault set exceeds the ``log N - 1`` tolerance
            bound and ``on_fault="report"`` was requested.
        metrics: per-run observability snapshot — phase timings,
            canonical packet/element/link counts derived from the
            executed backend, and the registry counter deltas the run
            caused (see :class:`repro.obs.RunCollector`).  Empty when
            the metrics registry is disabled.
    """

    schedule: Schedule
    sync: SyncResult | DegradedResult
    async_: AsyncResult | DegradedResult | None = None
    faults: FaultPlan | None = None
    undelivered_nodes: frozenset[int] = field(default_factory=frozenset)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when some node missed data (faults beat the schedule)."""
        return bool(self.undelivered_nodes) or isinstance(
            self.sync, DegradedResult
        )

    @property
    def cycles(self) -> int:
        """Routing steps used (the paper's cycle count)."""
        return self.sync.cycles

    @property
    def time(self) -> float:
        """Simulated completion time.

        The event-driven time when available (it models start-up
        overlap and hardware packetization), else the lock-step time.
        """
        return self.async_.time if self.async_ is not None else self.sync.time

    @property
    def link_stats(self) -> LinkStats:
        """Per-edge traffic of the run."""
        return self.sync.link_stats

    @property
    def algorithm(self) -> str:
        """Generator label of the schedule."""
        return self.schedule.algorithm

    def __repr__(self) -> str:
        return (
            f"CollectiveResult({self.algorithm!r}, cycles={self.cycles}, "
            f"time={self.time:.6g})"
        )


@dataclass
class AllreduceResult:
    """Outcome of the two-phase allreduce composition.

    The paper's trees make allreduce a *reverse broadcast* (the SBT
    reduce) followed by a broadcast of the combined operand from the
    same root; this object packages both phase results with the summed
    cost view and one uniform ``metrics`` dict, so allreduce reports
    exactly like the single-schedule collectives.

    Iterating or indexing yields ``(reduce, broadcast)`` — the tuple
    shape :func:`repro.collectives.allreduce` historically returned —
    so ``phase1, phase2 = allreduce(...)`` keeps working.
    """

    reduce: CollectiveResult
    broadcast: CollectiveResult
    metrics: dict[str, Any] = field(default_factory=dict)

    def __iter__(self):
        return iter((self.reduce, self.broadcast))

    def __getitem__(self, index):
        return (self.reduce, self.broadcast)[index]

    def __len__(self) -> int:
        return 2

    @property
    def phases(self) -> tuple[CollectiveResult, CollectiveResult]:
        """The two phase results, in execution order."""
        return (self.reduce, self.broadcast)

    @property
    def cycles(self) -> int:
        """Routing steps of both phases, summed (phases are serial)."""
        return self.reduce.cycles + self.broadcast.cycles

    @property
    def time(self) -> float:
        """Simulated completion time: the phases run back to back."""
        return self.reduce.time + self.broadcast.time

    @property
    def degraded(self) -> bool:
        """True when either phase missed data."""
        return self.reduce.degraded or self.broadcast.degraded

    @property
    def undelivered_nodes(self) -> frozenset[int]:
        """Nodes either phase could not serve."""
        return self.reduce.undelivered_nodes | self.broadcast.undelivered_nodes

    @property
    def link_stats(self) -> LinkStats:
        """Combined per-edge traffic of both phases."""
        return LinkStats.merged(
            [self.reduce.link_stats, self.broadcast.link_stats]
        )

    @property
    def algorithm(self) -> str:
        """Composition label."""
        return (
            f"{self.reduce.algorithm}+{self.broadcast.algorithm}"
        )

    # -- RunCollector compatibility ------------------------------------
    # finalize() reads ``result.async_``/``result.sync`` to find the
    # executed result's link stats; the composite exposes itself as the
    # executed view so the collector sees the merged traffic.

    @property
    def async_(self) -> None:
        return None

    @property
    def sync(self) -> "AllreduceResult":
        return self

    def __repr__(self) -> str:
        return (
            f"AllreduceResult({self.algorithm!r}, cycles={self.cycles}, "
            f"time={self.time:.6g})"
        )
