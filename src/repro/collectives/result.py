"""Result object returned by the high-level collective API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.engine import AsyncResult
from repro.sim.faults import DegradedResult, FaultPlan
from repro.sim.schedule import Schedule
from repro.sim.synchronous import SyncResult
from repro.sim.trace import LinkStats

__all__ = ["CollectiveResult"]


@dataclass
class CollectiveResult:
    """Outcome of one simulated collective operation.

    Attributes:
        schedule: the generated routing schedule.
        sync: synchronous (lock-step) execution result — cycle counts
            and validation.
        async_: asynchronous (event-driven) execution result — wall
            clock under the machine model, or ``None`` when the caller
            skipped the event simulation.
        faults: the fault plan the collective routed around and ran
            under, or ``None`` for a fault-free run.
        undelivered_nodes: nodes the collective could not serve at all
            (dead, or cut off from the source by the faults); empty
            unless the fault set exceeds the ``log N - 1`` tolerance
            bound and ``on_fault="report"`` was requested.
        metrics: per-run observability snapshot — phase timings,
            canonical packet/element/link counts derived from the
            executed backend, and the registry counter deltas the run
            caused (see :class:`repro.obs.RunCollector`).  Empty when
            the metrics registry is disabled.
    """

    schedule: Schedule
    sync: SyncResult | DegradedResult
    async_: AsyncResult | DegradedResult | None = None
    faults: FaultPlan | None = None
    undelivered_nodes: frozenset[int] = field(default_factory=frozenset)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when some node missed data (faults beat the schedule)."""
        return bool(self.undelivered_nodes) or isinstance(
            self.sync, DegradedResult
        )

    @property
    def cycles(self) -> int:
        """Routing steps used (the paper's cycle count)."""
        return self.sync.cycles

    @property
    def time(self) -> float:
        """Simulated completion time.

        The event-driven time when available (it models start-up
        overlap and hardware packetization), else the lock-step time.
        """
        return self.async_.time if self.async_ is not None else self.sync.time

    @property
    def link_stats(self) -> LinkStats:
        """Per-edge traffic of the run."""
        return self.sync.link_stats

    @property
    def algorithm(self) -> str:
        """Generator label of the schedule."""
        return self.schedule.algorithm

    def __repr__(self) -> str:
        return (
            f"CollectiveResult({self.algorithm!r}, cycles={self.cycles}, "
            f"time={self.time:.6g})"
        )
