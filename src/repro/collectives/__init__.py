"""High-level simulated collective operations (the public API)."""

from repro.collectives.api import (
    allgather,
    allreduce,
    alltoall_personalized,
    broadcast,
    gather,
    reduce,
    scatter,
)
from repro.collectives.result import CollectiveResult

__all__ = [
    "allgather",
    "allreduce",
    "alltoall_personalized",
    "broadcast",
    "gather",
    "reduce",
    "scatter",
    "CollectiveResult",
]
