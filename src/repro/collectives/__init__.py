"""High-level simulated collective operations (the public API)."""

from repro.collectives.api import (
    BACKENDS,
    allgather,
    allreduce,
    alltoall_personalized,
    broadcast,
    check_delivery,
    collective_schedule,
    gather,
    reduce,
    scatter,
)
from repro.collectives.result import CollectiveResult

__all__ = [
    "BACKENDS",
    "allgather",
    "allreduce",
    "alltoall_personalized",
    "broadcast",
    "check_delivery",
    "collective_schedule",
    "gather",
    "reduce",
    "scatter",
    "CollectiveResult",
]
