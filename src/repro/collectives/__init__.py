"""High-level simulated collective operations (the public API)."""

from repro.collectives.api import (
    BACKENDS,
    ROOTED_OPS,
    SCHEDULE_OPS,
    all_broadcast,
    allgather,
    allreduce,
    alltoall_personalized,
    broadcast,
    check_delivery,
    collective_schedule,
    default_algorithm,
    gather,
    reduce,
    scatter,
)
from repro.collectives.result import AllreduceResult, CollectiveResult

__all__ = [
    "BACKENDS",
    "ROOTED_OPS",
    "SCHEDULE_OPS",
    "all_broadcast",
    "allgather",
    "allreduce",
    "alltoall_personalized",
    "broadcast",
    "check_delivery",
    "collective_schedule",
    "default_algorithm",
    "gather",
    "reduce",
    "scatter",
    "AllreduceResult",
    "CollectiveResult",
]
