"""High-level simulated collective operations (the public API)."""

from repro.collectives.api import (
    BACKENDS,
    ROOTED_OPS,
    SCHEDULE_OPS,
    allgather,
    allreduce,
    alltoall_personalized,
    broadcast,
    check_delivery,
    collective_schedule,
    gather,
    reduce,
    scatter,
)
from repro.collectives.result import AllreduceResult, CollectiveResult

__all__ = [
    "BACKENDS",
    "ROOTED_OPS",
    "SCHEDULE_OPS",
    "allgather",
    "allreduce",
    "alltoall_personalized",
    "broadcast",
    "check_delivery",
    "collective_schedule",
    "gather",
    "reduce",
    "scatter",
    "AllreduceResult",
    "CollectiveResult",
]
