"""The Balanced Spanning Tree (BST), §4.1 of the paper.

For personalized (scatter) communication the root is the bottleneck:
with the SBT, half of all traffic leaves over one port.  The BST prunes
the MSBT graph into a single spanning tree whose ``n`` root subtrees
each hold roughly ``N / log N`` nodes, so the root's ports carry nearly
equal shares.

Node ``i`` (relative address ``c = i XOR s``) is assigned to subtree
``base(c)`` — the minimum number of right rotations after which ``c``
attains its minimal rotated value (see :mod:`repro.bits.necklaces` for
the convention note).  With ``j = base(c)`` and ``k`` the first set bit
cyclically right of ``j`` (``k = j`` when ``c == 2**j``):

* ``parent(i) = i with bit k flipped``;
* ``children(i) = { i with bit m flipped : m a zero position between k
  and j }`` restricted to nodes whose base equals ``base(c)``;
* the root's children are all ``n`` neighbours.

Properties proved in the companion report [8] and *verified by this
library's tests*: one subtree has height ``n`` and the rest ``n - 1``;
subtree sizes match Table 5 (max subtree = number of n-bit necklaces
minus one); every cyclic node is a leaf; subtrees ``P .. n-1`` contain
no cyclic node of period ``P``; subtrees (excluding the all-ones node)
are isomorphic when ``n`` is prime; and ``phi(i, d)`` is monotone along
tree edges (property 3, which the level-by-level scatter relies on).
"""

from __future__ import annotations

from functools import cached_property

from repro.bits.necklaces import base as necklace_base
from repro.bits.necklaces import count_necklaces, is_cyclic, period
from repro.bits.ops import bit, flip_bit
from repro.topology.hypercube import Hypercube
from repro.trees.base import SpanningTree
from repro.trees.msbt import msbt_k, msbt_zero_span

__all__ = [
    "bst_parent",
    "bst_children",
    "bst_subtree_index",
    "BalancedSpanningTree",
    "max_subtree_size",
]


def bst_subtree_index(i: int, s: int, n: int) -> int:
    """Root subtree of node ``i`` in the BST at source ``s``: ``base(i ^ s)``.

    Undefined for the root (``i == s``); raises ``ValueError`` there.
    """
    c = i ^ s
    if c == 0:
        raise ValueError("the root belongs to no subtree")
    return necklace_base(c, n)


def bst_parent(i: int, s: int, n: int) -> int | None:
    """Parent of node ``i`` in the BST rooted at ``s`` in an ``n``-cube."""
    c = i ^ s
    if c == 0:
        return None
    j = necklace_base(c, n)
    k = msbt_k(c, j, n)
    return flip_bit(i, k)


def bst_children(i: int, s: int, n: int) -> tuple[int, ...]:
    """Children of node ``i`` in the BST rooted at ``s`` in an ``n``-cube."""
    c = i ^ s
    if c == 0:
        return tuple(flip_bit(i, m) for m in range(n))
    j = necklace_base(c, n)
    kids = []
    for m in msbt_zero_span(c, j, n):
        q = flip_bit(i, m)
        if necklace_base(q ^ s, n) == j:
            kids.append(q)
    return tuple(kids)


def max_subtree_size(n: int) -> int:
    """Closed form for the largest BST subtree: ``count_necklaces(n) - 1``.

    Subtree ``j`` holds one member of every necklace whose period
    exceeds ``j``; subtree 0 therefore holds one node per non-zero
    necklace.  This reproduces Table 5 of the paper exactly.
    """
    if n < 1:
        raise ValueError(f"cube dimension must be >= 1, got {n}")
    return count_necklaces(n) - 1


class BalancedSpanningTree(SpanningTree):
    """The balanced spanning tree for one-to-all personalized communication.

    >>> t = BalancedSpanningTree(Hypercube(4))
    >>> sorted(len(v) for v in t.root_subtrees.values())
    [3, 3, 4, 5]
    >>> t.height
    4
    """

    def parent(self, node: int) -> int | None:
        self._cube.check_node(node)
        return bst_parent(node, self._root, self.n)

    def children(self, node: int) -> tuple[int, ...]:
        self._cube.check_node(node)
        return bst_children(node, self._root, self.n)

    def subtree_index(self, node: int) -> int:
        """Root subtree ``j = base(node ^ root)`` containing ``node``."""
        return bst_subtree_index(self._cube.check_node(node), self._root, self.n)

    @cached_property
    def subtree_node_lists(self) -> tuple[tuple[int, ...], ...]:
        """Nodes of each root subtree, indexed by subtree number ``0..n-1``.

        Unlike :attr:`root_subtrees` (keyed by root child) this is keyed
        by the paper's subtree index ``j``; subtree ``j`` hangs off the
        root child across dimension ``j``.
        """
        groups: list[list[int]] = [[] for _ in range(self.n)]
        for node in self._cube.nodes():
            if node == self._root:
                continue
            groups[self.subtree_index(node)].append(node)
        return tuple(tuple(sorted(g)) for g in groups)

    def subtree_size(self, j: int) -> int:
        """Number of nodes in root subtree ``j``."""
        self._cube.check_port(j)
        return len(self.subtree_node_lists[j])

    def is_cyclic_node(self, node: int) -> bool:
        """True when the relative address of ``node`` is cyclic (period < n)."""
        c = self.relative(self._cube.check_node(node))
        return c != 0 and is_cyclic(c, self.n)

    def node_period(self, node: int) -> int:
        """Rotation period of the relative address of ``node``."""
        c = self.relative(self._cube.check_node(node))
        if c == 0:
            raise ValueError("the root's relative address 0 has no meaningful period")
        return period(c, self.n)

    def balance_ratio(self) -> float:
        """Max subtree size over the ideal ``(N - 1) / n`` (Table 5's last column)."""
        ideal = (self._cube.num_nodes - 1) / self.n
        return max(map(len, self.subtree_node_lists)) / ideal
