"""The Hamiltonian-path (HP) broadcast baseline.

A binary-reflected Gray code enumerates all cube nodes so that
consecutive nodes are adjacent; translated to start at the source, the
path is a (degenerate) spanning tree of height ``N - 1``.  Broadcasting
along it needs ``N - 1`` propagation steps for one packet, but only one
(full duplex) or two (half duplex) cycles per packet in steady state —
which is why the paper notes HP can beat the SBT for very large
messages when start-ups are cheap (Table 1 vs Table 2).
"""

from __future__ import annotations

from repro.bits.gray import hamiltonian_path
from repro.topology.hypercube import Hypercube
from repro.trees.base import SpanningTree

__all__ = ["HamiltonianPathTree"]


class HamiltonianPathTree(SpanningTree):
    """A Gray-code Hamiltonian path rooted at the source.

    >>> t = HamiltonianPathTree(Hypercube(3), root=0)
    >>> t.height
    7
    >>> t.path[:4]
    [0, 1, 3, 2]
    """

    def __init__(self, cube: Hypercube, root: int = 0):
        super().__init__(cube, root)
        self._path = hamiltonian_path(cube.dimension, start=root)
        self._parent_of = {b: a for a, b in zip(self._path, self._path[1:])}
        self._parent_of[root] = None  # type: ignore[assignment]

    @property
    def path(self) -> list[int]:
        """The node sequence from the source to the far end."""
        return list(self._path)

    def parent(self, node: int) -> int | None:
        self._cube.check_node(node)
        return self._parent_of[node]

    def position(self, node: int) -> int:
        """Index of ``node`` along the path (the source is 0)."""
        self._cube.check_node(node)
        return self.levels[node]
