"""Ring-decomposition spanning tree for k-ary n-cube tori.

The torus factors into ``n`` directed rings per node; the
dimension-ordered spanning tree corrects the *highest* non-zero
relative coordinate one step toward zero along the shorter ring
direction (ties go forward).  Depth is the torus diameter
``n * floor(k/2)`` — a shortest-path tree — and each ring splits into
a forward branch of ``ceil((k-1)/2)`` nodes and a backward branch of
``floor((k-1)/2)`` nodes, the bidirectional circulation of Jung &
Sakho's broadcast construction.

The parent rule is a pure function of the relative coordinates
``(c_i - root_i) mod k``, so the tree is translation-equivariant: the
tree at any root is the coordinate-wise translation of the tree at
root 0, which the tree cache exploits.
"""

from __future__ import annotations

from repro.topology.torus import Torus
from repro.trees.base import SpanningTree

__all__ = ["RingDecompositionTree"]


class RingDecompositionTree(SpanningTree):
    """Dimension-ordered shortest-path spanning tree of a torus.

    >>> t = RingDecompositionTree(Torus(1, 5), root=0)
    >>> [t.parent(v) for v in range(5)]
    [None, 0, 1, 4, 0]
    """

    def __init__(self, cube: Torus, root: int = 0):
        if not isinstance(cube, Torus):
            raise TypeError(
                f"RingDecompositionTree requires a Torus host, got {type(cube).__name__}"
            )
        super().__init__(cube, root)

    def parent(self, node: int) -> int | None:
        """Correct the highest non-zero relative digit one ring step."""
        cube: Torus = self._cube  # type: ignore[assignment]
        self._cube.check_node(node)
        if node == self._root:
            return None
        k = cube.arity
        rel = [
            (c - r) % k
            for c, r in zip(cube.coords(node), cube.coords(self._root))
        ]
        dim = max(i for i, d in enumerate(rel) if d != 0)
        # Forward branch covers relative positions 1 .. ceil((k-1)/2);
        # the rest arrive backward around the ring.
        if rel[dim] <= (k - 1) - (k - 1) // 2:
            rel[dim] -= 1
        else:
            rel[dim] = (rel[dim] + 1) % k
        root_coords = cube.coords(self._root)
        return cube.from_coords(
            tuple((d + r) % k for d, r in zip(rel, root_coords))
        )
