"""Abstract spanning-tree interface shared by SBT, BST, TCBT and HP.

A concrete tree only has to implement :meth:`SpanningTree.parent`;
everything else (children maps, levels, subtree sizes, traversal
orders, structural validation) is derived here.  The derived data is
cached because the routing layer queries it repeatedly while generating
schedules.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from functools import cached_property

from repro.topology.base import Topology, topology_token
from repro.topology.graph import check_spanning_tree
from repro.topology.hypercube import DirectedEdge

__all__ = ["SpanningTree"]


class SpanningTree(ABC):
    """A directed spanning tree of a topology, rooted at ``root``.

    Subclasses implement :meth:`parent`; consistency of any separately
    defined children function with the parent function is asserted by
    :meth:`validate`.  The host graph is any :class:`Topology` (the
    paper's tree families require a hypercube; the ring-decomposition
    tree requires a torus).
    """

    def __init__(self, cube: Topology, root: int = 0):
        self._cube = cube
        self._root = cube.check_node(root)

    # -- to be provided by subclasses ---------------------------------------

    @abstractmethod
    def parent(self, node: int) -> int | None:
        """Parent of ``node`` in the tree; ``None`` for the root."""

    # -- basic accessors -----------------------------------------------------

    @property
    def cube(self) -> Topology:
        """The host topology."""
        return self._cube

    @property
    def root(self) -> int:
        """The root (source) node."""
        return self._root

    @property
    def n(self) -> int:
        """Cube dimension."""
        return self._cube.dimension

    def relative(self, node: int) -> int:
        """Relative address ``node XOR root`` (the paper's ``c``).

        Hypercube-specific; the torus tree families use coordinate
        arithmetic instead.
        """
        return node ^ self._root

    def cache_token(self) -> tuple:
        """Hashable identity used by the schedule cache (see repro.cache).

        Two trees with equal tokens must be structurally identical;
        construction of every family here is deterministic in
        ``(class, topology, root)``, so that triple suffices.  The
        topology token (e.g. ``("torus", n, k)``) keeps trees of
        different hosts at the same ``n`` from ever colliding.
        Subclasses with extra identity (e.g. the ERSBT tree index) must
        extend this.
        """
        return (type(self).__qualname__, topology_token(self._cube), self._root)

    # -- derived structure ----------------------------------------------------

    def children(self, node: int) -> tuple[int, ...]:
        """Children of ``node``, ascending.  Derived from :meth:`parent`."""
        return self.children_map[self._cube.check_node(node)]

    @cached_property
    def parents_map(self) -> dict[int, int | None]:
        """Parent of every node (``None`` for the root)."""
        return {i: self.parent(i) for i in self._cube.nodes()}

    @cached_property
    def children_map(self) -> dict[int, tuple[int, ...]]:
        """Children of every node, ascending."""
        kids: dict[int, list[int]] = {i: [] for i in self._cube.nodes()}
        for node, p in self.parents_map.items():
            if p is not None:
                kids[p].append(node)
        return {i: tuple(sorted(c)) for i, c in kids.items()}

    @cached_property
    def levels(self) -> dict[int, int]:
        """Depth of every node (root at level 0)."""
        out = {self._root: 0}
        queue = deque([self._root])
        while queue:
            node = queue.popleft()
            for c in self.children_map[node]:
                out[c] = out[node] + 1
                queue.append(c)
        if len(out) != self._cube.num_nodes:
            raise ValueError(
                f"{type(self).__name__} does not span the cube: "
                f"reached {len(out)} of {self._cube.num_nodes} nodes"
            )
        return out

    @property
    def height(self) -> int:
        """Largest level label in the tree."""
        return max(self.levels.values())

    def level_counts(self) -> list[int]:
        """Number of nodes at each level ``0 .. height``."""
        counts = [0] * (self.height + 1)
        for lvl in self.levels.values():
            counts[lvl] += 1
        return counts

    def level(self, node: int) -> int:
        """Depth of ``node``."""
        return self.levels[self._cube.check_node(node)]

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` has no children."""
        return not self.children_map[self._cube.check_node(node)]

    def edges(self) -> list[DirectedEdge]:
        """All ``N - 1`` directed tree edges ``parent -> child``."""
        return [
            DirectedEdge(p, c)
            for c, p in self.parents_map.items()
            if p is not None
        ]

    # -- subtrees of the root ---------------------------------------------------

    @cached_property
    def root_subtrees(self) -> dict[int, tuple[int, ...]]:
        """Map root-child -> all nodes of the subtree hanging off it.

        The paper's "subtree j" terminology always refers to subtrees of
        the root; here they are keyed by the root child they hang from
        and listed in ascending node order.
        """
        owner: dict[int, int] = {}
        for child in self.children_map[self._root]:
            stack = [child]
            while stack:
                node = stack.pop()
                owner[node] = child
                stack.extend(self.children_map[node])
        groups: dict[int, list[int]] = {c: [] for c in self.children_map[self._root]}
        for node, c in owner.items():
            groups[c].append(node)
        return {c: tuple(sorted(nodes)) for c, nodes in groups.items()}

    def subtree_of(self, node: int) -> tuple[int, ...]:
        """All nodes of the subtree rooted at ``node`` (including it)."""
        self._cube.check_node(node)
        out = []
        stack = [node]
        while stack:
            cur = stack.pop()
            out.append(cur)
            stack.extend(self.children_map[cur])
        return tuple(sorted(out))

    @cached_property
    def subtree_sizes(self) -> dict[int, int]:
        """Size of the subtree rooted at each node (leaves map to 1)."""
        sizes = {i: 1 for i in self._cube.nodes()}
        for node in sorted(self.levels, key=self.levels.__getitem__, reverse=True):
            p = self.parents_map[node]
            if p is not None:
                sizes[p] += sizes[node]
        return sizes

    def descendant_counts_by_distance(self, node: int) -> list[int]:
        """``phi(node, d)``: nodes at distance ``d`` below ``node`` in its subtree.

        Index ``d`` of the returned list counts subtree nodes exactly
        ``d`` tree-hops below ``node`` (index 0 is ``node`` itself).
        This is the paper's ``phi(i, j)`` used by BST property 3.
        """
        base_level = self.level(node)
        counts: list[int] = []
        for member in self.subtree_of(node):
            d = self.levels[member] - base_level
            while len(counts) <= d:
                counts.append(0)
            counts[d] += 1
        return counts

    # -- traversals ---------------------------------------------------------------

    def preorder(self, start: int | None = None) -> list[int]:
        """Depth-first preorder of the subtree at ``start`` (default root).

        Children are visited in ascending node order, matching the
        deterministic transmission tables of §5.2.
        """
        start = self._root if start is None else self._cube.check_node(start)
        out: list[int] = []
        stack = [start]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(self.children_map[node]))
        return out

    def breadth_first(self, start: int | None = None) -> list[int]:
        """Breadth-first order of the subtree at ``start`` (default root)."""
        start = self._root if start is None else self._cube.check_node(start)
        out = []
        queue = deque([start])
        while queue:
            node = queue.popleft()
            out.append(node)
            queue.extend(self.children_map[node])
        return out

    def reversed_breadth_first(self, start: int | None = None) -> list[int]:
        """The paper's "reversed breadth-first" order: deepest level first."""
        forward = self.breadth_first(start)
        return sorted(forward, key=lambda i: -self.levels[i])

    # -- validation ------------------------------------------------------------------

    def validate(self) -> None:
        """Structural sanity check; raises ``ValueError`` on any violation."""
        check_spanning_tree(self._cube, self._root, self.parents_map)
        for node, kids in self.children_map.items():
            for c in kids:
                if self.parents_map[c] != node:
                    raise ValueError(
                        f"children/parent inconsistency at edge {node} -> {c}"
                    )

    def to_dot(self, label_bits: bool = True) -> str:
        """Render the tree as Graphviz DOT for inspection/figures.

        Args:
            label_bits: label nodes with their binary addresses
                (``a_{n-1}…a_0``) instead of decimal.
        """
        from repro.bits.ops import bit_string

        def name(v: int) -> str:
            return bit_string(v, self.n) if label_bits else str(v)

        lines = [
            "digraph tree {",
            "  rankdir=TB;",
            f'  label="{type(self).__name__} root={name(self._root)}";',
            f'  "{name(self._root)}" [shape=doublecircle];',
        ]
        for child, parent in sorted(self.parents_map.items()):
            if parent is not None:
                lines.append(f'  "{name(parent)}" -> "{name(child)}";')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, root={self._root})"
        )
