"""The Spanning Binomial Tree (SBT), §3.1 of the paper.

The SBT rooted at node ``s`` contains, for each node ``i`` with
relative address ``c = i XOR s``, the edges obtained by complementing
any bit of the *leading zeroes* of ``c``.  Equivalently, with ``k`` the
highest-order set bit of ``c`` (``k = -1`` for ``c = 0``):

* ``children(i) = { i with bit m flipped : m in k+1 .. n-1 }``
* ``parent(i)   = i with bit k flipped`` (undefined at the root).

Structure facts (asserted in tests): level of node ``i`` is ``|c|``,
level ``l`` holds ``C(n, l)`` nodes, subtree ``j`` of the root holds the
``2**j`` nodes whose relative addresses have highest set bit ``j``, and
the height is ``n``.
"""

from __future__ import annotations

from repro.bits.ops import flip_bit, highest_set_bit, lowest_set_bit, popcount
from repro.topology.hypercube import Hypercube
from repro.trees.base import SpanningTree

__all__ = ["SpanningBinomialTree", "sbt_children", "sbt_parent"]


def sbt_parent(i: int, s: int, n: int) -> int | None:
    """Parent of node ``i`` in the SBT rooted at ``s`` in an ``n``-cube.

    Pure-function form of the paper's ``parent_SBT(i, s)``.
    """
    c = i ^ s
    if c == 0:
        return None
    k = highest_set_bit(c)
    return flip_bit(i, k)


def sbt_children(i: int, s: int, n: int) -> tuple[int, ...]:
    """Children of node ``i`` in the SBT rooted at ``s`` in an ``n``-cube.

    Pure-function form of the paper's ``children_SBT(i, s)``: complement
    each leading-zero bit of the relative address.
    """
    c = i ^ s
    k = highest_set_bit(c)  # -1 at the root
    return tuple(flip_bit(i, m) for m in range(k + 1, n))


class SpanningBinomialTree(SpanningTree):
    """The binomial spanning tree of the cube, rooted anywhere.

    >>> t = SpanningBinomialTree(Hypercube(3), root=0)
    >>> t.children(0)
    (1, 2, 4)
    >>> t.children(1)
    (3, 5)
    >>> t.parent(6)
    2
    """

    def parent(self, node: int) -> int | None:
        self._cube.check_node(node)
        return sbt_parent(node, self._root, self.n)

    def children(self, node: int) -> tuple[int, ...]:
        # Direct formula — no need for the cached derivation.
        self._cube.check_node(node)
        return sbt_children(node, self._root, self.n)

    def level(self, node: int) -> int:
        """Depth of ``node``: the Hamming weight of its relative address."""
        self._cube.check_node(node)
        return popcount(node ^ self._root)

    def subtree_index(self, node: int) -> int:
        """Root subtree ``j`` containing ``node``.

        Per §4.1: node ``i`` belongs to subtree ``j`` iff bit ``j`` of
        the relative address is one and all lower bits are zero — i.e.
        ``j`` is the lowest set bit.  Subtree ``j`` hangs off the root's
        port ``j`` and holds ``2**(n-1-j)`` nodes; half of the cube sits
        in subtree 0, which is why the SBT root's port 0 is the scatter
        bottleneck.  Undefined for the root itself (raises
        ``ValueError``).
        """
        c = self.relative(self._cube.check_node(node))
        if c == 0:
            raise ValueError("the root belongs to no subtree")
        return lowest_set_bit(c)

    def subtree_size(self, j: int) -> int:
        """Size of root subtree ``j``: ``2**(n-1-j)`` nodes."""
        self._cube.check_port(j)
        return 1 << (self.n - 1 - j)

    def descending_relative_order(self) -> list[int]:
        """Non-root nodes in descending relative-address order.

        This is the transmission order used by the paper's iPSC
        implementation of the SBT scatter (§5.2): the root processes the
        data starting with relative address ``N - 1`` and the resulting
        port order follows the binary-reflected Gray code transition
        sequence.
        """
        return [
            self._root ^ c
            for c in range(self._cube.num_nodes - 1, 0, -1)
        ]
