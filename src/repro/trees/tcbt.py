"""The Two-rooted Complete Binary Tree (TCBT) baseline [Bhatt–Ipsen,
Deshpande–Jenevein].

A complete binary tree with ``2**n - 1`` nodes does not embed in the
``n``-cube with dilation 1 (parity obstruction), but the *two-rooted*
(double-rooted) variant with ``2**n`` nodes does, as a spanning tree:
two adjacent roots ``R1 — R2``, each with a single child heading a
complete binary tree of height ``n - 2``.

The construction here is the classic induction, carried out with an
explicit dimension triple ``(e, p, r)``: the root edge crosses
dimension ``e``, ``R1``'s child edge crosses ``p`` and ``R2``'s child
edge crosses ``r``.  To build a triple with ``p != r`` over ``n`` dims,
split the cube across ``e`` into halves ``H0``/``H1``; build
``(p, r, q)`` in ``H0`` (roots ``u1 — u2``) and ``(r, p, s)`` in ``H1``
(roots ``v1 — v2``, translated so ``v1 = u1 XOR 2^e``); then take
``R1 = u1`` with child ``u2``, ``R2 = v1`` with child ``v2``, re-hanging
``u1``'s old subtree head under ``v2`` and ``v1``'s old subtree head
under ``u2`` (both re-hangs cross dimension ``e``, so dilation stays 1).
The two-dimensional base case is the 4-node path, where both child
edges necessarily cross the same dimension.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bits.ops import flip_bit
from repro.topology.hypercube import Hypercube
from repro.trees.base import SpanningTree

__all__ = ["TwoRootedCompleteBinaryTree", "build_drcbt"]


def _build(
    dims: tuple[int, ...],
    e: int,
    p: int,
    r: int,
) -> tuple[int, int, dict[int, int]]:
    """Recursively build a DRCBT over the subcube spanned by ``dims``.

    Returns ``(u1, u2, parents)`` where ``u1 XOR u2 == 2**e`` is the
    root pair, ``u1``'s child crosses ``p``, ``u2``'s child crosses
    ``r``, ``u1 == 0`` (callers translate), and ``parents`` maps every
    other subcube node to its parent.
    """
    n = len(dims)
    if n == 1:
        return 0, 1 << e, {}
    if n == 2:
        if p != r:
            raise ValueError("a 2-cube DRCBT forces both child edges onto one dimension")
        u1, u2 = 0, 1 << e
        return u1, u2, {flip_bit(u1, p): u1, flip_bit(u2, p): u2}
    if p == r:
        raise ValueError(f"child dimensions must differ for n >= 3, got p == r == {p}")
    sub = tuple(d for d in dims if d != e)
    # Free child dimension for the recursive halves: any sub-dimension
    # other than p and r when available, else (the 2-dim base) forced.
    if len(sub) == 2:
        q = r
        s = p
    else:
        q = next(d for d in sub if d not in (p, r))
        s = q
    u1, u2, parents0 = _build(sub, p, r, q)
    v1_raw, v2_raw, parents1_raw = _build(sub, r, p, s)
    shift = flip_bit(u1, e) ^ v1_raw  # translate so v1 lands across e from u1
    v1 = v1_raw ^ shift
    v2 = v2_raw ^ shift
    parents = dict(parents0)
    for node, par in parents1_raw.items():
        parents[node ^ shift] = par ^ shift
    x1 = flip_bit(u1, r)  # u1's old subtree head
    y1 = flip_bit(v1, p)  # v1's old subtree head
    # Re-hang across dimension e and wire the new root children.
    parents[y1] = u2
    parents[x1] = v2
    parents[u2] = u1
    parents[v2] = v1
    return u1, v1, parents


@lru_cache(maxsize=None)
def _drcbt_cached(n: int) -> tuple[int, int, tuple[tuple[int, int], ...]]:
    if n == 1:
        r1, r2, parents = _build((0,), 0, 0, 0)
    elif n == 2:
        r1, r2, parents = _build((0, 1), 1, 0, 0)
    else:
        r1, r2, parents = _build(tuple(range(n)), n - 1, 0, 1)
    return r1, r2, tuple(parents.items())


def build_drcbt(n: int) -> tuple[int, int, dict[int, int]]:
    """Build a spanning DRCBT of the ``n``-cube at a canonical position.

    Returns ``(R1, R2, parents)``: the adjacent root pair with
    ``R1 == 0`` and the parent of every node other than the roots.
    The recursion runs once per dimension; repeat calls return a fresh
    dict rebuilt from a memoized immutable form.
    """
    if n < 1:
        raise ValueError(f"cube dimension must be >= 1, got {n}")
    r1, r2, items = _drcbt_cached(n)
    return r1, r2, dict(items)


class TwoRootedCompleteBinaryTree(SpanningTree):
    """Spanning DRCBT rooted (for routing purposes) at one of its two roots.

    The broadcast source is ``R1``; ``R2`` becomes its first child.
    From ``R1`` the tree has height ``n``; every internal node below
    the roots has exactly two children, which is why one-port TCBT
    broadcast needs ``2 log N - 2`` propagation steps (Table 1).

    >>> t = TwoRootedCompleteBinaryTree(Hypercube(4), root=0)
    >>> t.validate()
    >>> t.height
    4
    """

    def __init__(self, cube: Hypercube, root: int = 0):
        super().__init__(cube, root)
        r1, r2, parents = build_drcbt(cube.dimension)
        shift = root ^ r1
        self._parents: dict[int, int | None] = {
            node ^ shift: par ^ shift for node, par in parents.items()
        }
        self._parents[r1 ^ shift] = None
        self._parents[r2 ^ shift] = r1 ^ shift
        self._second_root = r2 ^ shift

    @property
    def second_root(self) -> int:
        """The co-root ``R2`` (first child of the routing root ``R1``)."""
        return self._second_root

    def parent(self, node: int) -> int | None:
        return self._parents[self._cube.check_node(node)]

    def max_fanout(self) -> int:
        """Largest out-degree in the tree (2 below the roots)."""
        return max(len(kids) for kids in self.children_map.values())
