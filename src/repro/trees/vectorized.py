"""Vectorized whole-cube tree computations (NumPy).

The object-based trees in this package are convenient up to ``n ~ 12``;
these array routines compute the same structural data for every node at
once — parents, levels, BST bases and subtree sizes — which keeps
Table 5-scale analyses (``n = 20`` means a million nodes) interactive.

All functions take the cube dimension ``n`` and return arrays indexed
by node address; they are cross-checked against the scalar
definitions in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.bits.ops import popcount_array, rotate_right_array

__all__ = [
    "sbt_parents_array",
    "sbt_levels_array",
    "bst_bases_array",
    "bst_parents_array",
    "bst_subtree_sizes_array",
    "cyclic_mask_array",
    "msbt_labels_array",
]


def _check_n(n: int) -> None:
    if not 1 <= n <= 24:
        raise ValueError(f"cube dimension must be in 1..24, got {n}")


def sbt_parents_array(n: int, source: int = 0) -> np.ndarray:
    """SBT parent of every node (``-1`` at the source).

    Vector form of :func:`repro.trees.sbt.sbt_parent`: strip the highest
    set bit of the relative address.
    """
    _check_n(n)
    nodes = np.arange(1 << n, dtype=np.int64)
    c = nodes ^ source
    out = np.full(1 << n, -1, dtype=np.int64)
    nz = c != 0
    high_bit = (np.int64(1) << _bit_length(c[nz])) >> 1
    out[nz] = nodes[nz] ^ high_bit
    return out


def sbt_levels_array(n: int, source: int = 0) -> np.ndarray:
    """SBT level (= Hamming weight of the relative address) per node."""
    _check_n(n)
    nodes = np.arange(1 << n, dtype=np.int64)
    return popcount_array(nodes ^ source)


def _bit_length(x: np.ndarray) -> np.ndarray:
    """Elementwise ``int.bit_length`` for non-negative int64 arrays."""
    out = np.zeros(x.shape, dtype=np.int64)
    v = x.astype(np.uint64).copy()
    while True:
        nz = v != 0
        if not nz.any():
            break
        out[nz] += 1
        v[nz] >>= np.uint64(1)
    return out


def bst_bases_array(n: int, source: int = 0) -> np.ndarray:
    """BST subtree index (``base``) of every node (0 at the source).

    Vector form of :func:`repro.bits.necklaces.base`: the least number
    of right rotations reaching the minimal rotated value.
    """
    _check_n(n)
    c = np.arange(1 << n, dtype=np.int64) ^ source
    best_val = c.copy()
    best_j = np.zeros(c.shape, dtype=np.int64)
    v = c.copy()
    for j in range(1, n):
        v = rotate_right_array(v, 1, n)
        better = v < best_val
        best_val[better] = v[better]
        best_j[better] = j
    return best_j


def bst_parents_array(n: int, source: int = 0) -> np.ndarray:
    """BST parent of every node (``-1`` at the source).

    Uses the identity that for node ``c`` with base ``j``, the bit the
    parent function flips (``k``, the first set bit cyclically right of
    ``j``) is the highest set bit of the minimal rotation ``R^j(c)``
    mapped back to position ``(h + j) mod n``.
    """
    _check_n(n)
    nodes = np.arange(1 << n, dtype=np.int64)
    c = nodes ^ source
    j = bst_bases_array(n, source)
    canon = c.copy()
    # rotate each c right by its own base: do it per distinct shift
    for shift in range(1, n):
        sel = j == shift
        if sel.any():
            canon[sel] = rotate_right_array(c[sel], shift, n)
    out = np.full(1 << n, -1, dtype=np.int64)
    nz = c != 0
    h = _bit_length(canon[nz]) - 1
    k = (h + j[nz]) % n
    out[nz] = nodes[nz] ^ (np.int64(1) << k)
    return out


def bst_subtree_sizes_array(n: int, source: int = 0) -> np.ndarray:
    """Size of each of the ``n`` BST root subtrees (indexed by base).

    One ``O(N)`` pass; reproduces Table 5 at ``n = 20`` in well under a
    second, where the object tree would need a million Python objects.
    """
    _check_n(n)
    bases = bst_bases_array(n, source)
    sizes = np.bincount(bases, minlength=n)
    # the source itself (c == 0) lands in bin 0; it is the root, not a
    # subtree member
    sizes[0] -= 1
    return sizes


def msbt_labels_array(n: int, j: int, source: int = 0) -> np.ndarray:
    """MSBT edge label ``f(i, j)`` for every node (``-1`` at the source).

    Vector form of :func:`repro.trees.msbt.msbt_label`.  ``k`` (the
    first set bit cyclically right of ``j``) is found by rotating the
    relative address left by ``n - j`` so that the scan becomes a plain
    highest-set-bit: position ``p`` of ``c`` maps to ``(p + n - j) mod
    n``, putting ``j - 1`` on top; then ``k = (h + j) mod n`` for ``h``
    the rotated word's highest set bit.
    """
    _check_n(n)
    if not 0 <= j < n:
        raise ValueError(f"tree index {j} outside 0..{n - 1}")
    c = np.arange(1 << n, dtype=np.int64) ^ source
    out = np.full(1 << n, -1, dtype=np.int64)
    nz = c != 0
    cn = c[nz]
    rot = rotate_right_array(cn, j, n)  # position j-1 of c becomes n-1
    h = _bit_length(rot) - 1
    k = (h + j) % n
    cj = (cn >> j) & 1
    label = np.where(
        cj == 0,
        j + n,
        np.where(k >= j, k, k + n),
    )
    out[nz] = label
    return out


def cyclic_mask_array(n: int, source: int = 0) -> np.ndarray:
    """Boolean mask of the cyclic nodes (period < n) per node address."""
    _check_n(n)
    c = np.arange(1 << n, dtype=np.int64) ^ source
    cyclic = np.zeros(c.shape, dtype=bool)
    for p in range(1, n):
        if n % p == 0:
            cyclic |= rotate_right_array(c, p, n) == c
    return cyclic
