"""Spanning trees given by an explicit parent map.

The structured families (SBT, MSBT, BST, ...) derive their shape from
closed-form address arithmetic; degraded-mode routing instead works
with whatever tree survives a fault set —
:func:`repro.topology.fault.fault_avoiding_spanning_tree` returns a
plain parent map over the live (and reachable) nodes.
:class:`SurvivorTree` adapts such a map to the
:class:`~repro.trees.base.SpanningTree` interface so the generic
pipelined broadcast and wave scatter generators run on it unchanged.

Unlike the structured families a :class:`SurvivorTree` may cover only
a subset of the cube (dead nodes, or an unreachable component in
``partial`` mode); the derived maps are restricted to the covered set
and :attr:`SurvivorTree.covered` names it.
"""

from __future__ import annotations

from collections import deque

from repro.topology.hypercube import Hypercube
from repro.trees.base import SpanningTree

__all__ = ["SurvivorTree"]


class SurvivorTree(SpanningTree):
    """A tree over the surviving cube, defined by a parent map.

    Args:
        cube: the host cube.
        root: the tree root (the collective's source).
        parents: map ``node -> parent`` (``None`` at the root) whose
            edges must all be cube edges.  Nodes absent from the map
            are simply not covered by the tree.

    Raises:
        ValueError: when the map is not a tree rooted at ``root`` over
            its own key set, or uses a non-cube edge.
    """

    def __init__(
        self, cube: Hypercube, root: int, parents: dict[int, int | None]
    ):
        super().__init__(cube, root)
        if root not in parents or parents[root] is not None:
            raise ValueError(f"parent map must have root {root} with parent None")
        self._parents: dict[int, int | None] = dict(parents)

        kids: dict[int, list[int]] = {v: [] for v in self._parents}
        for v, p in self._parents.items():
            if p is None:
                continue
            cube.check_node(v)
            if p not in self._parents:
                raise ValueError(f"parent {p} of {v} is not itself in the tree")
            if not cube.are_adjacent(p, v):
                raise ValueError(f"tree edge {p} -> {v} is not a cube edge")
            kids[p].append(v)
        children = {v: tuple(sorted(c)) for v, c in kids.items()}

        levels: dict[int, int] = {root: 0}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for c in children[node]:
                levels[c] = levels[node] + 1
                queue.append(c)
        if len(levels) != len(self._parents):
            orphan = sorted(set(self._parents) - set(levels))
            raise ValueError(
                f"parent map is not a tree: {len(orphan)} nodes unreachable "
                f"from the root (e.g. {orphan[:4]})"
            )

        sizes = {v: 1 for v in self._parents}
        for node in sorted(levels, key=levels.__getitem__, reverse=True):
            p = self._parents[node]
            if p is not None:
                sizes[p] += sizes[node]

        # Inject the restricted maps where the base class's
        # cached_property accessors look them up, exactly like the
        # XOR-translation cache does; the full-cube spanning checks in
        # the base derivations are thereby bypassed on purpose.
        self.__dict__["parents_map"] = dict(self._parents)
        self.__dict__["children_map"] = children
        self.__dict__["levels"] = levels
        self.__dict__["subtree_sizes"] = sizes

    @property
    def covered(self) -> frozenset[int]:
        """The nodes this tree reaches (root included)."""
        return frozenset(self._parents)

    def parent(self, node: int) -> int | None:
        self._cube.check_node(node)
        try:
            return self._parents[node]
        except KeyError:
            raise ValueError(f"node {node} is not covered by this tree") from None

    def cache_token(self) -> tuple:
        """Identity for the schedule cache: the full edge set.

        Two survivor trees are interchangeable only when their parent
        maps coincide, so the map itself is the token — a cached
        fault-free schedule can never be served for a damaged cube.
        """
        return (
            type(self).__qualname__,
            self.n,
            self._root,
            tuple(sorted(self._parents.items(), key=lambda kv: kv[0])),
        )

    def __repr__(self) -> str:
        return (
            f"SurvivorTree(n={self.n}, root={self._root}, "
            f"covered={len(self._parents)}/{self._cube.num_nodes})"
        )
