"""Spanning structures: SBT, MSBT, BST, TCBT, HP, and torus ring trees."""

from repro.trees.base import SpanningTree
from repro.trees.ring import RingDecompositionTree
from repro.trees.bst import (
    BalancedSpanningTree,
    bst_children,
    bst_parent,
    bst_subtree_index,
    max_subtree_size,
)
from repro.trees.hamiltonian import HamiltonianPathTree
from repro.trees.hp_variants import CenteredHamiltonianPathTree, hamiltonian_cycle
from repro.trees.mapped import SurvivorTree
from repro.trees.msbt import (
    EdgeReversedSBT,
    MSBTGraph,
    ersbt_children,
    ersbt_parent,
    msbt_k,
    msbt_label,
    msbt_zero_span,
)
from repro.trees.sbt import SpanningBinomialTree, sbt_children, sbt_parent
from repro.trees.tcbt import TwoRootedCompleteBinaryTree, build_drcbt

__all__ = [
    "SpanningTree",
    "RingDecompositionTree",
    "SpanningBinomialTree",
    "sbt_children",
    "sbt_parent",
    "EdgeReversedSBT",
    "MSBTGraph",
    "ersbt_children",
    "ersbt_parent",
    "msbt_k",
    "msbt_label",
    "msbt_zero_span",
    "BalancedSpanningTree",
    "bst_children",
    "bst_parent",
    "bst_subtree_index",
    "max_subtree_size",
    "TwoRootedCompleteBinaryTree",
    "build_drcbt",
    "HamiltonianPathTree",
    "CenteredHamiltonianPathTree",
    "hamiltonian_cycle",
    "SurvivorTree",
]
