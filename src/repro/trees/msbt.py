"""Multiple Spanning Binomial Trees (MSBT), §3.2–3.3 of the paper.

The MSBT graph consists of ``n`` *edge-disjoint* directed spanning
trees, one per port ``j`` of the source ``s``.  The ``j``-th tree is an
Edge-Reversed Spanning Binomial Tree (ERSBT): an SBT rooted at the
source's neighbour across dimension ``j`` (rotated so the source falls
in its smallest subtree) with the edge to the source reversed.

Together the ``n`` ERSBTs use every directed edge of the cube except
the ``n`` edges pointing *into* the source — which is what lets the
source push ``n`` distinct packets per cycle and achieve the
``ceil(M / (B log N)) + log N`` all-port broadcast lower bound.

The module also implements the paper's edge-labelling ``f(i, j)``
(§3.3.2) which assigns each tree edge the cycle, modulo the pipelining
period, in which it carries a packet; the three validity conditions it
satisfies are checked by :meth:`MSBTGraph.validate_labelling`.
"""

from __future__ import annotations

from functools import cached_property

from repro.bits.ops import bit, flip_bit
from repro.topology.hypercube import DirectedEdge, Hypercube
from repro.trees.base import SpanningTree

__all__ = [
    "msbt_k",
    "msbt_zero_span",
    "ersbt_parent",
    "ersbt_children",
    "msbt_label",
    "EdgeReversedSBT",
    "MSBTGraph",
]


def msbt_k(c: int, j: int, n: int) -> int:
    """The paper's ``k``: first set bit cyclically to the right of bit ``j``.

    Scans positions ``j-1, j-2, ..., 0, n-1, ..., j`` of the relative
    address ``c`` and returns the first position holding a one.  Returns
    ``j`` itself when ``c == 2**j`` and ``-1`` when ``c == 0``.
    """
    if c == 0:
        return -1
    for step in range(1, n + 1):
        pos = (j - step) % n
        if bit(c, pos):
            return pos
    raise AssertionError("unreachable: c != 0 has a set bit")


def msbt_zero_span(c: int, j: int, n: int) -> tuple[int, ...]:
    """The paper's set ``M_MSBT(c, j) = {(k+1) mod n, ..., (j-1) mod n}``.

    These are the zero positions of ``c`` strictly between ``k`` and
    ``j`` (cyclically); flipping each yields one child of the node.
    Returned in the scan order nearest-to-``j`` first.
    """
    k = msbt_k(c, j, n)
    if k == -1:
        return ()
    out = []
    for step in range(1, n + 1):
        pos = (j - step) % n
        if pos == k:
            break
        out.append(pos)
    return tuple(out)


def ersbt_parent(i: int, j: int, s: int, n: int) -> int | None:
    """Parent of node ``i`` in the ``j``-th ERSBT of the MSBT at source ``s``."""
    c = i ^ s
    k = msbt_k(c, j, n)
    if k == -1:
        return None
    if not bit(c, j):
        return flip_bit(i, j)
    return flip_bit(i, k)


def ersbt_children(i: int, j: int, s: int, n: int) -> tuple[int, ...]:
    """Children of node ``i`` in the ``j``-th ERSBT of the MSBT at source ``s``."""
    c = i ^ s
    k = msbt_k(c, j, n)
    if k == -1:
        return (flip_bit(i, j),)
    if not bit(c, j):
        return ()
    span = msbt_zero_span(c, j, n)
    if k != j:
        return tuple(flip_bit(i, m) for m in (*span, j))
    return tuple(flip_bit(i, m) for m in span)


def msbt_label(i: int, j: int, s: int, n: int) -> int | None:
    """The labelling ``f(i, j)``: time slot of node ``i``'s input edge in tree ``j``.

    ``None`` at the source (which has no input edge).  The labels range
    over ``0 .. 2n - 1``; along every tree path they strictly increase,
    and at every node the input labels — and separately the output
    labels — are distinct modulo ``n``.  Broadcasting one packet per
    subtree therefore completes in ``2 log N`` cycles under the
    one-send-and-one-receive port model, with a fresh packet admitted
    every ``n`` cycles when pipelining.
    """
    c = i ^ s
    k = msbt_k(c, j, n)
    if k == -1:
        return None
    if not bit(c, j):
        return j + n
    if k >= j:
        return k
    return k + n


class EdgeReversedSBT(SpanningTree):
    """The ``j``-th ERSBT of an MSBT graph: a spanning tree rooted at the source.

    All nodes with relative bit ``j`` equal to one are internal; all
    others (except the source) are leaves hanging one hop across
    dimension ``j`` off an internal node.
    """

    def __init__(self, cube: Hypercube, j: int, root: int = 0):
        super().__init__(cube, root)
        self._j = cube.check_port(j)

    @property
    def tree_index(self) -> int:
        """Which of the ``n`` ERSBTs this is (the port ``j`` it starts on)."""
        return self._j

    def cache_token(self) -> tuple:
        return (type(self).__qualname__, self.n, self._root, self._j)

    def parent(self, node: int) -> int | None:
        self._cube.check_node(node)
        return ersbt_parent(node, self._j, self._root, self.n)

    def children(self, node: int) -> tuple[int, ...]:
        self._cube.check_node(node)
        return ersbt_children(node, self._j, self._root, self.n)

    def label(self, node: int) -> int | None:
        """Input-edge label ``f(node, j)`` of this node (``None`` at the source)."""
        self._cube.check_node(node)
        return msbt_label(node, self._j, self._root, self.n)


class MSBTGraph:
    """The union of the ``n`` edge-disjoint ERSBTs rooted at ``source``.

    >>> g = MSBTGraph(Hypercube(3))
    >>> len(g.trees)
    3
    >>> g.validate()          # edge-disjoint, spanning, correct edge budget
    >>> g.validate_labelling()
    """

    def __init__(self, cube: Hypercube, source: int = 0):
        self._cube = cube
        self._source = cube.check_node(source)
        self._trees = tuple(
            EdgeReversedSBT(cube, j, source) for j in range(cube.dimension)
        )

    @property
    def cube(self) -> Hypercube:
        """The host hypercube."""
        return self._cube

    @property
    def source(self) -> int:
        """The broadcast source node."""
        return self._source

    @property
    def trees(self) -> tuple[EdgeReversedSBT, ...]:
        """The ``n`` ERSBTs, indexed by starting port ``j``."""
        return self._trees

    @property
    def n(self) -> int:
        """Cube dimension."""
        return self._cube.dimension

    def label(self, node: int, j: int) -> int | None:
        """``f(node, j)`` for tree ``j``."""
        return self._trees[j].label(node)

    @cached_property
    def height(self) -> int:
        """Height of the MSBT graph: max tree height (``log N + 1``)."""
        return max(t.height for t in self._trees)

    def all_edges(self) -> set[DirectedEdge]:
        """Union of the directed edges of all ``n`` trees."""
        out: set[DirectedEdge] = set()
        for t in self._trees:
            out.update(t.edges())
        return out

    def unused_edges(self) -> set[DirectedEdge]:
        """Cube edges used by no tree — exactly the edges into the source."""
        return {
            DirectedEdge(e.src, e.dst)
            for e in self._cube.edges()
        } - self.all_edges()

    def validate(self) -> None:
        """Check spanning + edge-disjointness + the edge budget of §3.2."""
        for t in self._trees:
            t.validate()
        edge_lists = [t.edges() for t in self._trees]
        total = sum(len(es) for es in edge_lists)
        union = set().union(*map(set, edge_lists))
        if total != len(union):
            raise ValueError("ERSBTs are not edge-disjoint")
        expected = (self._cube.num_nodes - 1) * self.n
        if total != expected:
            raise ValueError(
                f"expected {(self._cube.num_nodes - 1)} * {self.n} = {expected} "
                f"directed edges, found {total}"
            )
        unused = self.unused_edges()
        wanted_unused = {
            DirectedEdge(flip_bit(self._source, j), self._source)
            for j in range(self.n)
        }
        if unused != wanted_unused:
            raise ValueError(
                "the unused directed edges are not exactly the edges into the source"
            )

    def validate_labelling(self) -> None:
        """Check the three conditions of §3.3.2 on the labelling ``f``.

        1. On every tree path the labels strictly increase (the least
           output label at a node exceeds its input label).
        2. At every cube node the input-edge labels are distinct mod n.
        3. At every cube node the output-edge labels are distinct mod n.
        """
        n = self.n
        for node in self._cube.nodes():
            in_labels: list[int] = []
            out_labels: list[int] = []
            for j, t in enumerate(self._trees):
                lab = t.label(node)
                if lab is not None:
                    in_labels.append(lab)
                for child in t.children(node):
                    child_lab = t.label(child)
                    assert child_lab is not None
                    out_labels.append(child_lab)
                    if lab is not None and child_lab <= lab:
                        raise ValueError(
                            f"condition 1 violated at node {node}, tree {j}: "
                            f"input label {lab} >= output label {child_lab}"
                        )
            if len({v % n for v in in_labels}) != len(in_labels):
                raise ValueError(
                    f"condition 2 violated at node {node}: input labels {in_labels}"
                )
            if len({v % n for v in out_labels}) != len(out_labels):
                raise ValueError(
                    f"condition 3 violated at node {node}: output labels {out_labels}"
                )

    def max_label(self) -> int:
        """Largest input-edge label over the whole graph (``2n - 1``)."""
        best = 0
        for t in self._trees:
            for node in self._cube.nodes():
                lab = t.label(node)
                if lab is not None and lab > best:
                    best = lab
        return best

    def __repr__(self) -> str:
        return f"MSBTGraph(n={self.n}, source={self._source})"
