"""Hamiltonian-path variations (§3.4).

The paper notes two HP variations that change delays and cycles per
packet "by at most a factor of two":

* a Hamiltonian path **with the source at the center** — two arms of
  about ``N/2`` nodes each halve the propagation delay;
* **two Hamiltonian paths with opposite directions sending distinct
  data** — realized in :mod:`repro.routing.broadcast_hp_variants` on
  the Gray-code Hamiltonian *cycle*.

This module provides the centered path as a spanning tree (root of
degree two), so the generic tree broadcast drives it directly.
"""

from __future__ import annotations

from repro.bits.gray import gray_sequence
from repro.topology.hypercube import Hypercube
from repro.trees.base import SpanningTree

__all__ = ["CenteredHamiltonianPathTree", "hamiltonian_cycle"]


def hamiltonian_cycle(n: int, start: int = 0) -> list[int]:
    """The Gray-code Hamiltonian *cycle* through all ``2**n`` nodes.

    Consecutive entries are adjacent, and so are the last and first
    (the binary-reflected Gray code is cyclic).  Requires ``n >= 2``
    for the closing edge to be distinct from the opening edge.
    """
    if n < 2:
        raise ValueError(f"a Hamiltonian cycle needs n >= 2, got {n}")
    if start < 0 or start >> n:
        raise ValueError(f"start node {start} outside a {n}-cube")
    return [g ^ start for g in gray_sequence(n)]


class CenteredHamiltonianPathTree(SpanningTree):
    """A Hamiltonian path re-rooted at its center node.

    The root sits in the middle of a Gray-code path, with the two path
    halves hanging off it as arms of sizes ``N/2`` and ``N/2 - 1``.
    Propagation delay drops from ``N - 1`` to ``N/2`` — the paper's
    "source at the center of the path" variation.

    >>> t = CenteredHamiltonianPathTree(Hypercube(3), root=0)
    >>> t.height
    4
    >>> len(t.children(0))
    2
    """

    def __init__(self, cube: Hypercube, root: int = 0):
        super().__init__(cube, root)
        cycle = hamiltonian_cycle(cube.dimension, start=root)
        half = cube.num_nodes // 2
        # arm A: forward along the cycle; arm B: backward (cycle edges)
        arm_a = cycle[1 : half + 1]
        arm_b = list(reversed(cycle[half + 1 :]))
        self._parent_of: dict[int, int | None] = {root: None}
        prev = root
        for v in arm_a:
            self._parent_of[v] = prev
            prev = v
        prev = root
        for v in arm_b:
            self._parent_of[v] = prev
            prev = v
        self._arms = (tuple(arm_a), tuple(arm_b))

    @property
    def arms(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The two path arms, in root-to-tip order."""
        return self._arms

    def parent(self, node: int) -> int | None:
        self._cube.check_node(node)
        return self._parent_of[node]
