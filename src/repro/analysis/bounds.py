"""Lower bounds from §1 and §3 of the paper.

These are what the MSBT and BST constructions are measured against:

* broadcasting one packet needs ``log N`` steps (doubling argument);
* broadcasting ``M`` elements with packets of ``B`` needs
  ``ceil(M / (B log N)) + log N`` steps when all ports work
  concurrently (the source's fan-out is ``log N``);
* one-to-all personalized communication needs the source to push
  ``(N-1) * M`` elements, so at least ``(N-1) / log N * M * t_c``
  transfer time with all ports, plus ``log N`` start-ups.
"""

from __future__ import annotations

from math import ceil

from repro.sim.ports import PortModel

__all__ = [
    "broadcast_step_lower_bound",
    "broadcast_time_lower_bound",
    "personalized_time_lower_bound",
    "source_traffic_personalized",
]


def broadcast_step_lower_bound(
    M: int, B: int, n: int, port_model: PortModel
) -> int:
    """Minimum routing steps to broadcast ``M`` elements with packets ``B``."""
    packets = ceil(M / B)
    if port_model is PortModel.ALL_PORT:
        return ceil(packets / n) + n if packets > 1 else n
    if port_model is PortModel.ONE_PORT_FULL:
        # one new distinct packet can leave the source per step; log N
        # steps to reach the farthest node.
        return packets + n if packets > 1 else n
    return 2 * packets + n - 1 if packets > 1 else n


def broadcast_time_lower_bound(
    M: int, n: int, tau: float, t_c: float, port_model: PortModel
) -> float:
    """Time lower bound with the packet size chosen optimally."""
    from math import sqrt

    if port_model is PortModel.ALL_PORT:
        return (sqrt(M * t_c / n) + sqrt(tau * n)) ** 2
    if port_model is PortModel.ONE_PORT_FULL:
        return (sqrt(M * t_c) + sqrt(tau * n)) ** 2
    return (sqrt(2 * M * t_c) + sqrt(tau * max(n - 1, 1))) ** 2


def source_traffic_personalized(n: int, M: int) -> int:
    """Elements the source must emit in one-to-all personalized routing."""
    return ((1 << n) - 1) * M


def personalized_time_lower_bound(
    n: int, M: int, tau: float, t_c: float, port_model: PortModel
) -> float:
    """Time lower bound for one-to-all personalized communication.

    All-port: the source's ``(N-1) * M`` elements leave over ``log N``
    ports, so ``(N-1)/log N * M * t_c`` transfer plus ``log N``
    start-ups.  One-port: everything serializes through one port at a
    time at the source.
    """
    N = 1 << n
    if port_model is PortModel.ALL_PORT:
        return (N - 1) / n * M * t_c + n * tau
    return (N - 1) * M * t_c + n * tau
