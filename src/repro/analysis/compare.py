"""Comparison builders for Tables 1, 2 and 4.

Table 4 compares each algorithm's broadcast complexity to the MSBT's
under four regimes; the entries here are computed numerically from the
Table 3 models so the benchmarks can verify the paper's asymptotic
claims (``~ log N``, ``1.5``, ``2``, ...) at finite ``N``.
"""

from __future__ import annotations

from repro.analysis.models import broadcast_model
from repro.sim.ports import PortModel

__all__ = [
    "propagation_delay_table",
    "cycles_per_packet_table",
    "table4_ratio",
    "table4_paper_entry",
    "TABLE4_ROWS",
    "TABLE4_REGIMES",
]

#: the (numerator algorithm, port model) rows of Table 4
TABLE4_ROWS: tuple[tuple[str, PortModel], ...] = (
    ("sbt", PortModel.ONE_PORT_HALF),
    ("tcbt", PortModel.ONE_PORT_HALF),
    ("sbt", PortModel.ONE_PORT_FULL),
    ("tcbt", PortModel.ONE_PORT_FULL),
    ("sbt", PortModel.ALL_PORT),
)

TABLE4_REGIMES = (
    "one_packet",
    "many_packets",
    "b_opt_startup_dominated",
    "b_opt_bandwidth_dominated",
)


def propagation_delay_table(n: int) -> dict[str, dict[PortModel, int]]:
    """Table 1 as a nested dict ``algorithm -> port model -> steps``."""
    from repro.analysis.models import propagation_delay

    return {
        algo: {pm: propagation_delay(algo, pm, n) for pm in PortModel}
        for algo in ("hp", "sbt", "tcbt", "msbt")
    }


def cycles_per_packet_table(n: int) -> dict[str, dict[PortModel, float]]:
    """Table 2 as a nested dict ``algorithm -> port model -> cycles``."""
    from repro.analysis.models import cycles_per_packet

    return {
        algo: {pm: cycles_per_packet(algo, pm, n) for pm in PortModel}
        for algo in ("hp", "sbt", "tcbt", "msbt")
    }


def table4_ratio(
    algorithm: str,
    port_model: PortModel,
    regime: str,
    n: int,
    tau: float = 1.0,
    t_c: float = 1.0,
) -> float:
    """The numeric ``T_algorithm / T_MSBT`` ratio for one Table 4 cell.

    Regimes (the table's four columns):

    * ``"one_packet"`` — ``M == B`` (a single packet);
    * ``"many_packets"`` — ``M / B >> log N`` (step terms dominate);
    * ``"b_opt_startup_dominated"`` — optimal ``B`` with
      ``tau log N >> M t_c``;
    * ``"b_opt_bandwidth_dominated"`` — optimal ``B`` with
      ``tau log N << M t_c``.
    """
    num = broadcast_model(algorithm, port_model)
    den = broadcast_model("msbt", port_model)
    if regime == "one_packet":
        M = B = 1
        return num.time(M, B, n, tau, t_c) / den.time(M, B, n, tau, t_c)
    if regime == "many_packets":
        M = 1 << 22
        B = max(1, M // ((1 << n) * n * 64))  # M/B far beyond N and log N
        return num.steps(M, B, n) / den.steps(M, B, n)
    if regime == "b_opt_startup_dominated":
        M, tau_, tc_ = 1, 1e9, 1.0
        return num.t_min(M, n, tau_, tc_) / den.t_min(M, n, tau_, tc_)
    if regime == "b_opt_bandwidth_dominated":
        M, tau_, tc_ = 1 << 40, 1.0, 1.0
        return num.t_min(M, n, tau_, tc_) / den.t_min(M, n, tau_, tc_)
    raise ValueError(f"unknown regime {regime!r}; pick one of {TABLE4_REGIMES}")


def table4_paper_entry(
    algorithm: str, port_model: PortModel, regime: str, n: int
) -> float:
    """The paper's printed Table 4 value, evaluated at dimension ``n``.

    Asymptotic entries (``log N``, ``1/2 log N``) are returned as their
    value at ``n``; the last row's bandwidth-dominated entry assumes
    ``tau log^2 N << M t_c`` (the paper's footnote 5).
    """
    one_packet = {
        ("sbt", PortModel.ONE_PORT_HALF): n / (n + 1),
        ("tcbt", PortModel.ONE_PORT_HALF): (2 * n - 2) / (n + 1),
        ("sbt", PortModel.ONE_PORT_FULL): n / (n + 1),
        ("tcbt", PortModel.ONE_PORT_FULL): (2 * n - 2) / (n + 1),
        ("sbt", PortModel.ALL_PORT): n / (n + 1),
    }
    many = {
        ("sbt", PortModel.ONE_PORT_HALF): n / 2,
        ("tcbt", PortModel.ONE_PORT_HALF): 1.5,
        ("sbt", PortModel.ONE_PORT_FULL): float(n),
        ("tcbt", PortModel.ONE_PORT_FULL): 2.0,
        ("sbt", PortModel.ALL_PORT): float(n),
    }
    startup = {
        ("sbt", PortModel.ONE_PORT_HALF): 1.0,
        ("tcbt", PortModel.ONE_PORT_HALF): 2.0,
        ("sbt", PortModel.ONE_PORT_FULL): 1.0,
        ("tcbt", PortModel.ONE_PORT_FULL): 2.0,
        ("sbt", PortModel.ALL_PORT): 1.0,
    }
    bandwidth = {
        ("sbt", PortModel.ONE_PORT_HALF): n / 2,
        ("tcbt", PortModel.ONE_PORT_HALF): 1.5,
        ("sbt", PortModel.ONE_PORT_FULL): float(n),
        ("tcbt", PortModel.ONE_PORT_FULL): 2.0,
        ("sbt", PortModel.ALL_PORT): float(n),
    }
    tables = {
        "one_packet": one_packet,
        "many_packets": many,
        "b_opt_startup_dominated": startup,
        "b_opt_bandwidth_dominated": bandwidth,
    }
    try:
        return tables[regime][(algorithm, port_model)]
    except KeyError:
        raise ValueError(
            f"no Table 4 entry for ({algorithm!r}, {port_model}, {regime!r})"
        ) from None
