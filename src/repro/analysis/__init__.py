"""Closed-form complexity models and comparisons (Tables 1-4 and 6)."""

from repro.analysis.bounds import (
    broadcast_step_lower_bound,
    broadcast_time_lower_bound,
    personalized_time_lower_bound,
    source_traffic_personalized,
)
from repro.analysis.compare import (
    TABLE4_REGIMES,
    TABLE4_ROWS,
    cycles_per_packet_table,
    propagation_delay_table,
    table4_paper_entry,
    table4_ratio,
)
from repro.analysis.models import (
    BROADCAST_ALGOS,
    SCATTER_ALGOS,
    BroadcastModel,
    broadcast_model,
    broadcast_time,
    cycles_per_packet,
    personalized_time_one_port,
    personalized_tmin,
    propagation_delay,
)
from repro.analysis.optimal import numeric_b_opt
from repro.analysis.symbolic import (
    render_table3,
    render_table6,
    table3_formulas,
    table6_formulas,
)
from repro.analysis.regimes import (
    crossover_message_size,
    fastest_algorithm,
    optimal_times,
)

__all__ = [
    "broadcast_step_lower_bound",
    "broadcast_time_lower_bound",
    "personalized_time_lower_bound",
    "source_traffic_personalized",
    "TABLE4_REGIMES",
    "TABLE4_ROWS",
    "cycles_per_packet_table",
    "propagation_delay_table",
    "table4_paper_entry",
    "table4_ratio",
    "BROADCAST_ALGOS",
    "SCATTER_ALGOS",
    "BroadcastModel",
    "broadcast_model",
    "broadcast_time",
    "cycles_per_packet",
    "personalized_time_one_port",
    "personalized_tmin",
    "propagation_delay",
    "numeric_b_opt",
    "crossover_message_size",
    "fastest_algorithm",
    "optimal_times",
    "render_table3",
    "render_table6",
    "table3_formulas",
    "table6_formulas",
]
