"""Numeric packet-size optimization.

The ``B_opt`` columns of Table 3 minimize the continuous relaxation of
``T(B) = (M/B + c1) * (tau + B * t_c)``.  This module cross-checks those
closed forms by brute-force minimization over integer packet sizes —
used by the Table 3 benchmark and handy for users tuning a real sweep.
"""

from __future__ import annotations

from repro.analysis.models import BroadcastModel

__all__ = ["numeric_b_opt"]


def numeric_b_opt(
    model: BroadcastModel,
    M: int,
    n: int,
    tau: float,
    t_c: float,
    b_max: int | None = None,
) -> tuple[int, float]:
    """Best integer packet size and its time for a Table 3 model.

    Scans ``B`` in ``1 .. b_max`` (default ``M``); the closed-form
    ``B_opt`` should land within the discretization error of this scan.
    """
    if M < 1:
        raise ValueError(f"message size must be >= 1, got {M}")
    b_max = b_max or M
    best_b, best_t = 1, float("inf")
    for B in range(1, b_max + 1):
        t = model.time(M, B, n, tau, t_c)
        if t < best_t:
            best_b, best_t = B, t
    return best_b, best_t
