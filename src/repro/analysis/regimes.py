"""Regime and crossover analysis between broadcast algorithms.

§3.4 observes: "Interestingly, broadcasting through a Hamiltonian Path
on a hypercube may be faster than broadcasting based on the SBT or even
the TCBT, depending on the values of M, t_c, tau and N."  The HP pays a
huge propagation delay (``N - 3`` start-up terms) but only one cycle
per packet in steady state, while the SBT pays ``log N`` cycles per
packet — so for big messages on start-up-cheap machines the path wins.

This module locates such crossovers numerically from the Table 3
models, so the claim is testable rather than anecdotal.
"""

from __future__ import annotations

from repro.analysis.models import broadcast_model
from repro.sim.ports import PortModel

__all__ = ["optimal_times", "fastest_algorithm", "crossover_message_size"]


def optimal_times(
    n: int,
    M: int,
    tau: float,
    t_c: float,
    port_model: PortModel,
    algorithms: tuple[str, ...] = ("hp", "sbt", "tcbt", "msbt"),
) -> dict[str, float]:
    """Optimal-packet-size broadcast time of each algorithm (Table 3 T_min)."""
    return {
        algo: broadcast_model(algo, port_model).t_min(M, n, tau, t_c)
        for algo in algorithms
    }


def fastest_algorithm(
    n: int,
    M: int,
    tau: float,
    t_c: float,
    port_model: PortModel,
    algorithms: tuple[str, ...] = ("hp", "sbt", "tcbt", "msbt"),
) -> str:
    """The algorithm with the least ``T_min`` for these parameters."""
    times = optimal_times(n, M, tau, t_c, port_model, algorithms)
    return min(times, key=times.__getitem__)


def crossover_message_size(
    algo_a: str,
    algo_b: str,
    n: int,
    tau: float,
    t_c: float,
    port_model: PortModel,
    m_max: int = 1 << 40,
) -> int | None:
    """Smallest ``M`` (bisection, within 1 %) where ``algo_a`` beats ``algo_b``.

    Returns ``None`` when ``algo_a`` never wins below ``m_max``.
    Assumes the advantage is monotone in ``M`` beyond the crossover —
    true for the Table 3 forms, whose packet terms are linear in ``M``
    with different constants.
    """
    a = broadcast_model(algo_a, port_model)
    b = broadcast_model(algo_b, port_model)

    def a_wins(M: int) -> bool:
        return a.t_min(M, n, tau, t_c) < b.t_min(M, n, tau, t_c)

    if a_wins(1):
        return 1
    if not a_wins(m_max):
        return None
    lo, hi = 1, m_max  # a loses at lo, wins at hi
    while hi > lo * 1.01 and hi - lo > 1:
        mid = (lo + hi) // 2
        if a_wins(mid):
            hi = mid
        else:
            lo = mid
    return hi
