"""Closed-form communication-complexity models (Tables 1, 2, 3 and 6).

All formulas are transcribed from the paper with its notation:
``N = 2**n`` nodes, ``M`` elements per (destination) message, ``B``
maximum packet size, ``tau`` start-up time, ``t_c`` per-element
transfer time, and ``log N`` always base 2.

Broadcast models give the routing-step count ``steps(M, B)``, the
resulting time ``steps * (tau + B * t_c)``, the optimal packet size and
the optimal time (Table 3).  Personalized-communication models give the
optimal-packet-size times of Table 6 plus the ``T(B)`` forms of §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2, sqrt
from typing import Callable

from repro.sim.ports import PortModel

__all__ = [
    "BroadcastModel",
    "broadcast_model",
    "broadcast_time",
    "propagation_delay",
    "cycles_per_packet",
    "personalized_tmin",
    "personalized_time_one_port",
    "BROADCAST_ALGOS",
    "SCATTER_ALGOS",
]

BROADCAST_ALGOS = ("hp", "sbt", "tcbt", "msbt")
SCATTER_ALGOS = ("sbt", "tcbt", "bst")


@dataclass(frozen=True)
class BroadcastModel:
    """One row of Table 3.

    Attributes:
        algorithm: ``"hp" | "sbt" | "tcbt" | "msbt"``.
        port_model: the communication capability assumed.
        steps: routing-step count as a function of ``(M, B, n)``.
        b_opt: optimal packet size as a function of ``(M, n, tau, t_c)``.
        t_min: optimal time as a function of ``(M, n, tau, t_c)``.
    """

    algorithm: str
    port_model: PortModel
    steps: Callable[[int, int, int], float]
    b_opt: Callable[[float, int, float, float], float]
    t_min: Callable[[float, int, float, float], float]

    def time(self, M: int, B: int, n: int, tau: float, t_c: float) -> float:
        """``T = steps(M, B) * (tau + B * t_c)`` (the Table 3 ``T`` column)."""
        return self.steps(M, B, n) * (tau + B * t_c)


def _sq(a: float, b: float) -> float:
    return (sqrt(a) + sqrt(b)) ** 2


_BROADCAST_TABLE: dict[tuple[str, PortModel], BroadcastModel] = {}


def _register(
    algorithm: str,
    port_model: PortModel,
    steps: Callable[[int, int, int], float],
    b_opt: Callable[[float, int, float, float], float],
    t_min: Callable[[float, int, float, float], float],
) -> None:
    _BROADCAST_TABLE[(algorithm, port_model)] = BroadcastModel(
        algorithm, port_model, steps, b_opt, t_min
    )


# --- HP (Hamiltonian path) ---------------------------------------------------
_register(
    "hp",
    PortModel.ONE_PORT_HALF,
    steps=lambda M, B, n: 2 * ceil(M / B) + (1 << n) - 3,
    b_opt=lambda M, n, tau, tc: sqrt(2 * M * tau / (((1 << n) - 3) * tc)),
    t_min=lambda M, n, tau, tc: _sq(2 * M * tc, ((1 << n) - 3) * tau),
)
_register(
    "hp",
    PortModel.ONE_PORT_FULL,
    steps=lambda M, B, n: ceil(M / B) + (1 << n) - 3,
    b_opt=lambda M, n, tau, tc: sqrt(M * tau / (((1 << n) - 3) * tc)),
    t_min=lambda M, n, tau, tc: _sq(M * tc, ((1 << n) - 3) * tau),
)
# the paper gives no separate HP all-port row (pipelining already uses
# one port); reuse the full-duplex model.
_register(
    "hp",
    PortModel.ALL_PORT,
    steps=lambda M, B, n: ceil(M / B) + (1 << n) - 3,
    b_opt=lambda M, n, tau, tc: sqrt(M * tau / (((1 << n) - 3) * tc)),
    t_min=lambda M, n, tau, tc: _sq(M * tc, ((1 << n) - 3) * tau),
)

# --- SBT ----------------------------------------------------------------------
for _pm in (PortModel.ONE_PORT_HALF, PortModel.ONE_PORT_FULL):
    _register(
        "sbt",
        _pm,
        steps=lambda M, B, n: ceil(M / B) * n,
        b_opt=lambda M, n, tau, tc: float(M),
        t_min=lambda M, n, tau, tc: n * (M * tc + tau),
    )
_register(
    "sbt",
    PortModel.ALL_PORT,
    steps=lambda M, B, n: ceil(M / B) + n - 1,
    b_opt=lambda M, n, tau, tc: sqrt(M * tau / (max(n - 1, 1) * tc)),
    t_min=lambda M, n, tau, tc: _sq(M * tc, tau * max(n - 1, 1)),
)

# --- TCBT ----------------------------------------------------------------------
_register(
    "tcbt",
    PortModel.ONE_PORT_HALF,
    steps=lambda M, B, n: 3 * ceil(M / B) + 2 * n - 5,
    b_opt=lambda M, n, tau, tc: sqrt(3 * M * tau / (max(2 * n - 5, 1) * tc)),
    t_min=lambda M, n, tau, tc: _sq(3 * M * tc, tau * max(2 * n - 5, 1)),
)
_register(
    "tcbt",
    PortModel.ONE_PORT_FULL,
    steps=lambda M, B, n: 2 * (ceil(M / B) + n - 2),
    b_opt=lambda M, n, tau, tc: sqrt(M * tau / (max(n - 2, 1) * tc)),
    t_min=lambda M, n, tau, tc: 2 * _sq(M * tc, tau * max(n - 2, 1)),
)
_register(
    "tcbt",
    PortModel.ALL_PORT,
    steps=lambda M, B, n: ceil(M / B) + n - 1,
    b_opt=lambda M, n, tau, tc: sqrt(M * tau / (max(n - 1, 1) * tc)),
    t_min=lambda M, n, tau, tc: _sq(M * tc, tau * max(n - 1, 1)),
)

# --- MSBT ----------------------------------------------------------------------
_register(
    "msbt",
    PortModel.ONE_PORT_HALF,
    steps=lambda M, B, n: 2 * ceil(M / B) + n - 1,
    b_opt=lambda M, n, tau, tc: sqrt(2 * M * tau / (max(n - 1, 1) * tc)),
    t_min=lambda M, n, tau, tc: _sq(2 * M * tc, tau * max(n - 1, 1)),
)
_register(
    "msbt",
    PortModel.ONE_PORT_FULL,
    steps=lambda M, B, n: ceil(M / B) + n,
    b_opt=lambda M, n, tau, tc: sqrt(M * tau / (n * tc)),
    t_min=lambda M, n, tau, tc: _sq(M * tc, tau * n),
)
_register(
    "msbt",
    PortModel.ALL_PORT,
    steps=lambda M, B, n: ceil(M / (B * n)) + n,
    b_opt=lambda M, n, tau, tc: sqrt(M * tau / tc) / n,
    t_min=lambda M, n, tau, tc: _sq(M * tc / n, tau * n),
)


def broadcast_model(algorithm: str, port_model: PortModel) -> BroadcastModel:
    """Look up one row of Table 3."""
    try:
        return _BROADCAST_TABLE[(algorithm, port_model)]
    except KeyError:
        raise ValueError(
            f"no broadcast model for ({algorithm!r}, {port_model})"
        ) from None


def broadcast_time(
    algorithm: str,
    port_model: PortModel,
    M: int,
    B: int,
    n: int,
    tau: float,
    t_c: float,
) -> float:
    """Convenience wrapper: Table 3's ``T`` for the given parameters."""
    return broadcast_model(algorithm, port_model).time(M, B, n, tau, t_c)


def propagation_delay(algorithm: str, port_model: PortModel, n: int) -> int:
    """Table 1: routing steps to broadcast a single packet."""
    N = 1 << n
    table = {
        "hp": {pm: N - 1 for pm in PortModel},
        "sbt": {pm: n for pm in PortModel},
        "tcbt": {
            PortModel.ONE_PORT_HALF: 2 * n - 2,
            PortModel.ONE_PORT_FULL: 2 * n - 2,
            PortModel.ALL_PORT: n,
        },
        "msbt": {
            PortModel.ONE_PORT_HALF: 3 * n - 1,
            PortModel.ONE_PORT_FULL: 2 * n,
            PortModel.ALL_PORT: n + 1,
        },
    }
    try:
        return table[algorithm][port_model]
    except KeyError:
        raise ValueError(f"no Table 1 entry for ({algorithm!r}, {port_model})") from None


def cycles_per_packet(algorithm: str, port_model: PortModel, n: int) -> float:
    """Table 2: steady-state routing steps per distinct packet."""
    table = {
        "hp": {
            PortModel.ONE_PORT_HALF: 2.0,
            PortModel.ONE_PORT_FULL: 1.0,
            PortModel.ALL_PORT: 1.0,
        },
        "sbt": {
            PortModel.ONE_PORT_HALF: float(n),
            PortModel.ONE_PORT_FULL: float(n),
            PortModel.ALL_PORT: 1.0,
        },
        "tcbt": {
            PortModel.ONE_PORT_HALF: 3.0,
            PortModel.ONE_PORT_FULL: 2.0,
            PortModel.ALL_PORT: 1.0,
        },
        "msbt": {
            PortModel.ONE_PORT_HALF: 2.0,
            PortModel.ONE_PORT_FULL: 1.0,
            PortModel.ALL_PORT: 1.0 / n,
        },
    }
    try:
        return table[algorithm][port_model]
    except KeyError:
        raise ValueError(f"no Table 2 entry for ({algorithm!r}, {port_model})") from None


def personalized_tmin(
    algorithm: str,
    port_model: PortModel,
    n: int,
    M: int,
    tau: float,
    t_c: float,
) -> float:
    """Table 6: optimal-packet-size time of personalized communication.

    The TCBT one-port and BST one-port rows are the paper's *upper
    bounds* (its rows carry "<=").
    """
    N = 1 << n
    one_port = port_model is not PortModel.ALL_PORT
    if algorithm == "sbt":
        if one_port:
            return (N - 1) * M * t_c + n * tau
        return N / 2 * M * t_c + n * tau
    if algorithm == "tcbt":
        if one_port:
            return (2 * N - 2 * n - 1) * M * t_c + (2 * n - 2) * tau
        return (0.75 * N - 1) * M * t_c + n * tau
    if algorithm == "bst":
        if one_port:
            return N * (1 + 2 * log2(max(n, 2)) / n) * M * t_c + (2 * n - 2) * tau
        return (N - 1) / n * M * t_c + n * tau
    raise ValueError(f"no Table 6 entry for {algorithm!r}")


def personalized_time_one_port(
    algorithm: str,
    n: int,
    M: int,
    B: int,
    tau: float,
    t_c: float,
) -> float:
    """§4.2's one-port ``T(B)`` estimates for the SBT and BST scatters."""
    N = 1 << n
    if algorithm == "sbt":
        if B <= M:
            return (N * M / B - 1) * (B * t_c + tau)
        B = min(B, N * M // 2)
        return (N - 1) * M * t_c + tau * (N * M / B + max(ceil(log2(B / M)), 0))
    if algorithm == "bst":
        if B >= N * M / n:
            return n * tau + (N - 1) * M * t_c
        return ((N - 1) * M / B) * (tau + B * t_c)
    raise ValueError(f"no one-port T(B) model for {algorithm!r}")
