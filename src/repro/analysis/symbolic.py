"""The paper's formulas as text — for reports and documentation.

Verbatim transcriptions of Table 3's ``T`` / ``B_opt`` / ``T_min``
columns and Table 6's ``T_min`` column, keyed the same way as the
numeric models, so generated reports can show the formula next to the
measured number.
"""

from __future__ import annotations

from repro.sim.ports import PortModel

__all__ = ["table3_formulas", "table6_formulas", "render_table3", "render_table6"]

_T3: dict[tuple[str, PortModel], tuple[str, str, str]] = {
    ("hp", PortModel.ONE_PORT_HALF): (
        "(2*ceil(M/B) + N - 3)(tau + B*tc)",
        "sqrt(2*M*tau / ((N-3)*tc))",
        "(sqrt(2*M*tc) + sqrt((N-3)*tau))^2",
    ),
    ("hp", PortModel.ONE_PORT_FULL): (
        "(ceil(M/B) + N - 3)(tau + B*tc)",
        "sqrt(M*tau / ((N-3)*tc))",
        "(sqrt(M*tc) + sqrt((N-3)*tau))^2",
    ),
    ("sbt", PortModel.ONE_PORT_HALF): (
        "ceil(M/B) * logN * (tau + B*tc)",
        "M",
        "logN * (M*tc + tau)",
    ),
    ("sbt", PortModel.ONE_PORT_FULL): (
        "ceil(M/B) * logN * (tau + B*tc)",
        "M",
        "logN * (M*tc + tau)",
    ),
    ("sbt", PortModel.ALL_PORT): (
        "(ceil(M/B) + logN - 1)(tau + B*tc)",
        "sqrt(M*tau / ((logN-1)*tc))",
        "(sqrt(M*tc) + sqrt(tau*(logN-1)))^2",
    ),
    ("tcbt", PortModel.ONE_PORT_HALF): (
        "(3*ceil(M/B) + 2*logN - 5)(tau + B*tc)",
        "sqrt(3*M*tau / ((2*logN-5)*tc))",
        "(sqrt(3*M*tc) + sqrt(tau*(2*logN-5)))^2",
    ),
    ("tcbt", PortModel.ONE_PORT_FULL): (
        "2*(ceil(M/B) + logN - 2)(tau + B*tc)",
        "sqrt(M*tau / ((logN-2)*tc))",
        "2*(sqrt(M*tc) + sqrt(tau*(logN-2)))^2",
    ),
    ("tcbt", PortModel.ALL_PORT): (
        "(ceil(M/B) + logN - 1)(tau + B*tc)",
        "sqrt(M*tau / (tc*(logN-1)))",
        "(sqrt(M*tc) + sqrt(tau*(logN-1)))^2",
    ),
    ("msbt", PortModel.ONE_PORT_HALF): (
        "(2*ceil(M/B) + logN - 1)(tau + B*tc)",
        "sqrt(2*M*tau / (tc*(logN-1)))",
        "(sqrt(2*M*tc) + sqrt(tau*(logN-1)))^2",
    ),
    ("msbt", PortModel.ONE_PORT_FULL): (
        "(ceil(M/B) + logN)(tau + B*tc)",
        "sqrt(M*tau / (tc*logN))",
        "(sqrt(M*tc) + sqrt(tau*logN))^2",
    ),
    ("msbt", PortModel.ALL_PORT): (
        "(ceil(M/(B*logN)) + logN)(tau + B*tc)",
        "(1/logN)*sqrt(M*tau/tc)",
        "(sqrt(M*tc/logN) + sqrt(tau*logN))^2",
    ),
}

_T6: dict[tuple[str, PortModel], str] = {
    ("sbt", PortModel.ONE_PORT_FULL): "(N-1)*M*tc + logN*tau",
    ("sbt", PortModel.ALL_PORT): "N/2*M*tc + logN*tau",
    ("tcbt", PortModel.ONE_PORT_FULL): "<= (2N - 2*logN - 1)*M*tc + (2*logN - 2)*tau",
    ("tcbt", PortModel.ALL_PORT): "(3/4*N - 1)*M*tc + logN*tau",
    ("bst", PortModel.ONE_PORT_FULL): "<= N*(1 + 2*log(logN)/logN)*M*tc + (2*logN - 2)*tau",
    ("bst", PortModel.ALL_PORT): "~= (N-1)/logN*M*tc + logN*tau",
}


def table3_formulas(algorithm: str, port_model: PortModel) -> tuple[str, str, str]:
    """The (T, B_opt, T_min) formula strings of one Table 3 row."""
    key = (algorithm, port_model)
    if key not in _T3:
        raise ValueError(f"no Table 3 formulas for {key}")
    return _T3[key]


def table6_formulas(algorithm: str, port_model: PortModel) -> str:
    """The T_min formula string of one Table 6 row."""
    key = (algorithm, port_model)
    if key not in _T6:
        raise ValueError(f"no Table 6 formula for {key}")
    return _T6[key]


def render_table3() -> str:
    """Table 3 as printed in the paper (formula text)."""
    from repro.experiments.harness import format_table

    rows = []
    for (algo, pm), (t, b, tmin) in _T3.items():
        rows.append([algo.upper(), pm.value, t, b, tmin])
    return format_table(
        ["algorithm", "ports", "T", "B_opt", "T_min"],
        rows,
        title="Table 3 (symbolic)",
    )


def render_table6() -> str:
    """Table 6 as printed in the paper (formula text)."""
    from repro.experiments.harness import format_table

    rows = [
        [algo.upper(), pm.value, f] for (algo, pm), f in _T6.items()
    ]
    return format_table(
        ["algorithm", "ports", "T_min"], rows, title="Table 6 (symbolic)"
    )
